//! Gaussian kernels with the paper's scale heuristic.

use qpp_linalg::{Matrix, MatrixView};
use serde::{Deserialize, Serialize};

/// Gaussian (RBF) kernel `k(x, y) = exp(-||x - y||² / τ)`.
///
/// The paper sets the scale `τ` to "a fixed fraction of the empirical
/// variance of the norms of the data points" (§VI-A): 0.1 for query
/// vectors and 0.2 for performance vectors. [`GaussianKernel::fit`]
/// implements that heuristic; `τ` can also be set directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianKernel {
    /// The scale factor τ (denominator of the squared distance).
    pub tau: f64,
}

impl GaussianKernel {
    /// Kernel with an explicit scale.
    pub fn new(tau: f64) -> Self {
        assert!(tau > 0.0 && tau.is_finite(), "tau must be positive");
        GaussianKernel { tau }
    }

    /// Scale heuristic in the spirit of the paper's "fixed fraction of
    /// the empirical variance of the norms of the data points" (§VI-A).
    ///
    /// The paper kernelized *raw* cardinality vectors, whose norm
    /// variance is on the same scale as pairwise squared distances, so
    /// a fixed fraction of it makes a usable τ. Our feature vectors are
    /// log-transformed and standardized (necessary for the simulator's
    /// value ranges), which collapses the norm variance to O(1) while
    /// pairwise squared distances stay O(dims) — a τ of a fraction of
    /// the norm variance would make the kernel matrix numerically the
    /// identity. We therefore anchor τ to the *mean pairwise squared
    /// distance* (same intent: a data-driven scale, one knob), so
    /// `fraction = 1.0` puts the average pair at `k = e⁻¹`.
    pub fn fit(data: MatrixView<'_>, fraction: f64) -> Self {
        let tau = (fraction * mean_squared_distance(data)).max(1e-6);
        GaussianKernel { tau }
    }

    /// Evaluates `k(a, b)`.
    #[inline]
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        (-qpp_linalg::vector::sq_dist(a, b) / self.tau).exp()
    }

    /// Full `n x n` kernel matrix over the rows of `data`.
    ///
    /// Row chunks are computed in parallel, each row in full. Symmetry
    /// is preserved bitwise without a mirror pass because `sq_dist` is
    /// exactly symmetric: `(x−y)²` and `(y−x)²` are the same float.
    pub fn matrix(&self, data: MatrixView<'_>) -> Matrix {
        let n = data.rows();
        // A few thousand evaluations per chunk; depends only on `n`.
        let rows_per_chunk = (16_384 / n.max(1)).clamp(4, 256);
        let parts = qpp_par::parallel_for_chunks(n, rows_per_chunk, |chunk| {
            let mut buf = Vec::with_capacity(chunk.range.len() * n);
            for i in chunk.range.clone() {
                let ri = data.row(i);
                for j in 0..n {
                    buf.push(if i == j {
                        1.0
                    } else {
                        self.eval(ri, data.row(j))
                    });
                }
            }
            buf
        });
        let mut flat = Vec::with_capacity(n * n);
        for part in parts {
            flat.extend(part);
        }
        if flat.is_empty() {
            return Matrix::zeros(n, n);
        }
        // `flat` holds exactly n*n entries by construction, so from_vec
        // cannot fail; the fallback keeps this path panic-free.
        Matrix::from_vec(n, n, flat).unwrap_or_else(|_| Matrix::zeros(n, n))
    }

    /// Kernel evaluations of one new point against every row of `data`.
    pub fn row(&self, data: MatrixView<'_>, point: &[f64]) -> Vec<f64> {
        qpp_par::parallel_for_chunks(data.rows(), 1024, |chunk| {
            chunk
                .range
                .map(|i| self.eval(data.row(i), point))
                .collect::<Vec<f64>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Like [`GaussianKernel::row`], writing into a reusable buffer.
    ///
    /// Runs serially (the predict path evaluates against a few hundred
    /// pivots — below any useful parallel grain) and allocates nothing
    /// once the buffer has warmed up. Each evaluation is the identical
    /// `eval(data.row(i), point)` of the parallel variant, in the same
    /// row order, so the values are bitwise equal.
    // qpp-lint: hot-path
    pub fn row_into(&self, data: MatrixView<'_>, point: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(data.row_iter().map(|r| self.eval(r, point)));
    }
}

/// Mean pairwise squared Euclidean distance over (a deterministic
/// subsample of) the rows of `data`.
fn mean_squared_distance(data: MatrixView<'_>) -> f64 {
    let n = data.rows();
    if n < 2 {
        return 1.0;
    }
    // Cap the O(n²) scan: stride-subsample to ~256 rows.
    let max_rows = 256;
    let stride = n.div_ceil(max_rows);
    let rows: Vec<&[f64]> = (0..n).step_by(stride).map(|i| data.row(i)).collect();
    let m = rows.len();
    if m < 2 {
        return 1.0;
    }
    // Fixed 32-row chunks of the triangular pair sum; partial sums merge
    // in chunk order, so the scale — and everything downstream of it —
    // is bitwise independent of the thread count.
    let parts = qpp_par::parallel_for_chunks(m, 32, |chunk| {
        let mut total = 0.0;
        let mut pairs = 0usize;
        for i in chunk.range.clone() {
            for j in (i + 1)..m {
                total += qpp_linalg::vector::sq_dist(rows[i], rows[j]);
                pairs += 1;
            }
        }
        (total, pairs)
    });
    let mut total = 0.0;
    let mut pairs = 0usize;
    for (t, p) in parts {
        total += t;
        pairs += p;
    }
    (total / pairs as f64).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_properties() {
        let k = GaussianKernel::new(2.0);
        // Self-similarity is 1.
        assert_eq!(k.eval(&[1.0, 2.0], &[1.0, 2.0]), 1.0);
        // Symmetry.
        let a = [0.0, 1.0];
        let b = [3.0, -1.0];
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
        // Bounded in (0, 1].
        let v = k.eval(&a, &b);
        assert!(v > 0.0 && v <= 1.0);
        // Monotone decreasing in distance.
        assert!(k.eval(&[0.0], &[1.0]) > k.eval(&[0.0], &[2.0]));
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let data = Matrix::from_vec(3, 2, vec![0., 0., 1., 0., 5., 5.]).unwrap();
        let k = GaussianKernel::new(1.0).matrix(data.view());
        for i in 0..3 {
            assert_eq!(k[(i, i)], 1.0);
            for j in 0..3 {
                assert_eq!(k[(i, j)], k[(j, i)]);
            }
        }
    }

    #[test]
    fn fit_anchors_tau_to_mean_squared_distance() {
        // Two rows at squared distance 4: mean pairwise d² = 4.
        let data = Matrix::from_vec(2, 2, vec![1., 0., 3., 0.]).unwrap();
        let k = GaussianKernel::fit(data.view(), 0.5);
        assert!((k.tau - 2.0).abs() < 1e-12);
        // fraction = 1 ⇒ the average pair evaluates to e⁻¹.
        let k1 = GaussianKernel::fit(data.view(), 1.0);
        assert!((k1.eval(data.row(0), data.row(1)) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn fit_floors_degenerate_scale() {
        let data = Matrix::from_vec(2, 2, vec![1., 0., 1., 0.]).unwrap(); // identical rows
        let k = GaussianKernel::fit(data.view(), 0.1);
        assert!(k.tau >= 1e-6);
    }

    #[test]
    fn row_matches_matrix_column() {
        let data = Matrix::from_vec(3, 2, vec![0., 0., 1., 1., 2., 0.]).unwrap();
        let kern = GaussianKernel::new(3.0);
        let m = kern.matrix(data.view());
        let r = kern.row(data.view(), data.row(1));
        for i in 0..3 {
            assert!((r[i] - m[(i, 1)]).abs() < 1e-12);
        }
    }

    #[test]
    fn row_into_is_bitwise_equal_to_row() {
        let data = Matrix::from_vec(4, 2, vec![0., 0., 1., 1., 2., 0., -1., 3.]).unwrap();
        let kern = GaussianKernel::new(1.5);
        let owned = kern.row(data.view(), &[0.5, 0.5]);
        let mut buf = Vec::new();
        kern.row_into(data.view(), &[0.5, 0.5], &mut buf);
        assert_eq!(owned.len(), buf.len());
        for (a, b) in owned.iter().zip(buf.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "tau must be positive")]
    fn rejects_bad_tau() {
        GaussianKernel::new(0.0);
    }
}
