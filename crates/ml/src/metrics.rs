//! Prediction-quality metrics.

use qpp_linalg::vector;

/// The paper's *predictive risk* (§VI-C):
///
/// ```text
/// 1 - Σ (predictedᵢ - actualᵢ)² / Σ (actualᵢ - mean(actual))²
/// ```
///
/// Like R², but computed on held-out test points, so values can be
/// negative (worse than predicting the training mean). 1.0 is perfect.
pub fn predictive_risk(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    assert!(!actual.is_empty(), "empty input");
    let mean = vector::sum(actual) / actual.len() as f64;
    let ss_res = vector::sum_iter(
        predicted
            .iter()
            .zip(actual.iter())
            .map(|(&p, &a)| (p - a) * (p - a)),
    );
    let ss_tot = vector::sum_iter(actual.iter().map(|&a| (a - mean) * (a - mean)));
    if ss_tot <= 0.0 {
        // Constant actuals: perfect iff residuals vanish.
        return if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        };
    }
    1.0 - ss_res / ss_tot
}

/// Fraction of predictions within `tolerance` *relative* error of the
/// actual value — the paper's headline "within 20% of actual for 85% of
/// test queries" statistic.
pub fn fraction_within(predicted: &[f64], actual: &[f64], tolerance: f64) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    let hits = predicted
        .iter()
        .zip(actual.iter())
        .filter(|(&p, &a)| {
            let denom = a.abs().max(1e-12);
            ((p - a).abs() / denom) <= tolerance
        })
        .count();
    hits as f64 / actual.len() as f64
}

/// Mean relative error (for report tables).
pub fn mean_relative_error(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    vector::sum_iter(
        predicted
            .iter()
            .zip(actual.iter())
            .map(|(&p, &a)| (p - a).abs() / a.abs().max(1e-12)),
    ) / actual.len() as f64
}

/// Predictive risk after dropping the `drop_worst` largest squared
/// residuals — the paper repeatedly reports "removing the furthest
/// outlier increased the predictive risk to …".
pub fn predictive_risk_dropping_outliers(
    predicted: &[f64],
    actual: &[f64],
    drop_worst: usize,
) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    let mut pairs: Vec<(f64, f64)> = predicted
        .iter()
        .zip(actual.iter())
        .map(|(&p, &a)| (p, a))
        .collect();
    pairs.sort_by(|x, y| {
        let rx = (x.0 - x.1) * (x.0 - x.1);
        let ry = (y.0 - y.1) * (y.0 - y.1);
        rx.partial_cmp(&ry).unwrap_or(std::cmp::Ordering::Equal)
    });
    let keep = pairs.len().saturating_sub(drop_worst).max(1);
    let (p, a): (Vec<f64>, Vec<f64>) = pairs[..keep].iter().cloned().unzip();
    predictive_risk(&p, &a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(predictive_risk(&a, &a), 1.0);
    }

    #[test]
    fn mean_prediction_scores_zero() {
        let actual = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!(predictive_risk(&pred, &actual).abs() < 1e-12);
    }

    #[test]
    fn bad_prediction_goes_negative() {
        let actual = [1.0, 2.0, 3.0];
        let pred = [30.0, -10.0, 99.0];
        assert!(predictive_risk(&pred, &actual) < 0.0);
    }

    #[test]
    fn constant_actuals_edge_case() {
        assert_eq!(predictive_risk(&[5.0, 5.0], &[5.0, 5.0]), 1.0);
        assert_eq!(predictive_risk(&[5.0, 6.0], &[5.0, 5.0]), f64::NEG_INFINITY);
    }

    #[test]
    fn fraction_within_counts_relative_errors() {
        let actual = [100.0, 100.0, 100.0, 100.0];
        let pred = [110.0, 125.0, 95.0, 81.0];
        // Within 20%: 110 (10%), 95 (5%), 81 (19%) → 3/4.
        assert!((fraction_within(&pred, &actual, 0.2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn dropping_outliers_improves_risk() {
        let actual = [1.0, 2.0, 3.0, 4.0, 1000.0];
        let pred = [1.0, 2.0, 3.0, 4.0, 5.0];
        let full = predictive_risk(&pred, &actual);
        let trimmed = predictive_risk_dropping_outliers(&pred, &actual, 1);
        assert!(trimmed > full);
        assert!((trimmed - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_relative_error_basic() {
        let actual = [10.0, 100.0];
        let pred = [11.0, 90.0];
        assert!((mean_relative_error(&pred, &actual) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        predictive_risk(&[1.0], &[1.0, 2.0]);
    }
}
