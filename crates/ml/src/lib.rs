//! Statistical machine learning for query performance prediction.
//!
//! Implements the full ladder of techniques the paper evaluates (§V):
//!
//! * [`regression`] — per-metric linear least squares, the baseline that
//!   fails (negative elapsed times, Figs. 3–4);
//! * [`kmeans`] — partition clustering, considered and rejected (§V-B)
//!   because it cannot relate *two* multivariate datasets;
//! * [`pca`] — principal component analysis, single-dataset only (§V-C);
//! * [`cca`] — linear canonical correlation analysis (§V-D);
//! * [`kcca`] — kernel CCA with Gaussian kernels (§V-E, §VI), the
//!   technique the paper adopts, implemented with pivoted incomplete
//!   Cholesky (Bach & Jordan) so training scales past the exact-solve
//!   regime;
//! * [`knn`] — nearest-neighbor lookup in projection space with the
//!   distance metrics and weighting schemes of Tables I–III;
//! * [`ann`] — sub-linear neighbor lookup: a deterministic IVF index
//!   (k-means inverted lists) with a size-triggered brute/IVF switch,
//!   for reference sets far past paper scale;
//! * [`metrics`] — the predictive-risk score used throughout §VI–VII;
//! * [`decision_tree`] — a small CART classifier backing the PQR-style
//!   runtime-range baseline from the related work (§III).

// Library code must degrade into typed errors, never panics.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod ann;
pub mod cca;
pub mod decision_tree;
pub mod kcca;
pub mod kernel;
pub mod kmeans;
pub mod knn;
pub mod metrics;
pub mod pca;
pub mod regression;

pub use ann::{AnnIndex, AnnOptions, IvfIndex, IvfOptions};
pub use cca::{Cca, CcaMethod, CcaOptions};
pub use decision_tree::{DecisionTree, TreeOptions};
pub use kcca::{Kcca, KccaOptions, ProjectionScratch};
pub use kernel::GaussianKernel;
pub use kmeans::{KMeans, KMeansError};
pub use knn::{
    DistanceMetric, KnnError, KnnScratch, NearestNeighbors, Neighbor, NeighborWeighting,
};
pub use metrics::{fraction_within, predictive_risk};
pub use regression::MetricRegression;
