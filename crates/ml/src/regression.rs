//! Linear-regression baseline (paper §V-A).
//!
//! One ordinary-least-squares model per performance metric over the raw
//! query-plan features. The paper shows (Figs. 3–4) that this baseline
//! is orders of magnitude off and predicts physically impossible values
//! — e.g. −82 s elapsed time, −1.8 M records — because the targets are
//! heavy-tailed and the feature/metric relationship is nonlinear. We
//! keep the model unclamped on purpose so the experiments can count the
//! negative predictions like the paper did.

use qpp_linalg::{LeastSquares, LinalgError, Matrix};

/// Multi-target linear regression over query features.
#[derive(Debug, Clone)]
pub struct MetricRegression {
    model: LeastSquares,
    targets: usize,
}

impl MetricRegression {
    /// Fits one OLS model per column of `y` on the features `x`.
    pub fn fit(x: &Matrix, y: &Matrix) -> Result<Self, LinalgError> {
        let model = LeastSquares::fit(x, y)?;
        Ok(MetricRegression {
            model,
            targets: y.cols(),
        })
    }

    /// Predicts all metric values for one feature vector. Values may be
    /// negative — that is the point of the baseline.
    pub fn predict(&self, features: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.model.predict(features)
    }

    /// Predicts for every row of `x`.
    pub fn predict_matrix(&self, x: &Matrix) -> Result<Matrix, LinalgError> {
        self.model.predict_matrix(x)
    }

    /// Number of target metrics.
    pub fn targets(&self) -> usize {
        self.targets
    }

    /// Indices of features whose coefficient was (effectively) dropped
    /// for the given target — the paper noticed regression zeroing out
    /// covariates like `hashgroupby` cardinalities (§V-A).
    pub fn dropped_features(&self, target: usize, tol: f64) -> Vec<usize> {
        let coef = self.model.coefficients();
        (1..coef.rows())
            .filter(|&i| coef[(i, target)].abs() <= tol)
            .map(|i| i - 1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_linear_relationship_exactly() {
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![3.0, 5.0],
            vec![4.0, 0.0],
        ])
        .unwrap();
        let mut y = Matrix::zeros(4, 2);
        for i in 0..4 {
            y[(i, 0)] = 10.0 + 2.0 * x[(i, 0)];
            y[(i, 1)] = -3.0 * x[(i, 1)];
        }
        let m = MetricRegression::fit(&x, &y).unwrap();
        let p = m.predict(&[5.0, 2.0]).unwrap();
        assert!((p[0] - 20.0).abs() < 1e-9);
        assert!((p[1] + 6.0).abs() < 1e-9);
        assert_eq!(m.targets(), 2);
    }

    #[test]
    fn can_predict_negative_values() {
        // Decreasing relationship extrapolates below zero — the paper's
        // negative elapsed times.
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = Matrix::from_rows(&[vec![10.0], vec![5.0], vec![0.0]]).unwrap();
        let m = MetricRegression::fit(&x, &y).unwrap();
        let p = m.predict(&[10.0]).unwrap();
        assert!(p[0] < 0.0, "expected negative extrapolation, got {}", p[0]);
    }

    #[test]
    fn dropped_features_reports_zero_coefficients() {
        // Second feature is constant → coefficient pinned to 0 by the
        // rank-deficiency handling.
        let x = Matrix::from_rows(&[
            vec![1.0, 7.0],
            vec![2.0, 7.0],
            vec![3.0, 7.0],
            vec![4.0, 7.0],
        ])
        .unwrap();
        let y = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]).unwrap();
        let m = MetricRegression::fit(&x, &y).unwrap();
        let dropped = m.dropped_features(0, 1e-9);
        assert!(dropped.contains(&1), "dropped = {dropped:?}");
    }
}
