//! Regularized linear Canonical Correlation Analysis.
//!
//! Finds directions `wx`, `wy` maximizing `corr(X wx, Y wy)` via the
//! generalized symmetric eigenproblem (paper §V-D / Eq. 2 structure):
//!
//! ```text
//! [ 0    Cxy ] [wx]       [ Cxx + κI   0        ] [wx]
//! [ Cyx  0   ] [wy] = ρ · [ 0          Cyy + κI ] [wy]
//! ```
//!
//! Eigenvalues come in ±ρ pairs; the positive ones are the canonical
//! correlations. This module is also the computational backend of
//! [`crate::kcca`]: KCCA is linear CCA applied to incomplete-Cholesky
//! feature embeddings.

use qpp_linalg::{stats, vector, GeneralizedEigen, LinalgError, Matrix};
use serde::{Deserialize, Serialize};

/// Options for [`Cca::fit`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CcaOptions {
    /// Number of canonical components to keep (capped by min(p, q)).
    pub components: usize,
    /// Ridge regularization κ added to the within-set covariances.
    pub regularization: f64,
}

impl Default for CcaOptions {
    fn default() -> Self {
        CcaOptions {
            components: 8,
            regularization: 1e-3,
        }
    }
}

/// A fitted CCA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cca {
    /// Canonical correlations, descending (length = components kept).
    pub correlations: Vec<f64>,
    wx: Matrix,
    wy: Matrix,
    x_means: Vec<f64>,
    y_means: Vec<f64>,
}

impl Cca {
    /// Fits CCA on paired rows of `x` (`n x p`) and `y` (`n x q`).
    pub fn fit(x: &Matrix, y: &Matrix, opts: CcaOptions) -> Result<Cca, LinalgError> {
        if x.rows() != y.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "cca fit",
                lhs: x.shape(),
                rhs: y.shape(),
            });
        }
        let n = x.rows();
        if n < 2 {
            return Err(LinalgError::Empty("cca needs >= 2 rows"));
        }
        let (p, q) = (x.cols(), y.cols());
        let x_means = stats::column_means(x);
        let y_means = stats::column_means(y);
        let xc = center(x, &x_means);
        let yc = center(y, &y_means);

        let scale = 1.0 / n as f64;
        let cxx = xc.gram().scale(scale);
        let cyy = yc.gram().scale(scale);
        let cxy = xc.transpose().matmul(&yc)?.scale(scale);

        let d = p + q;
        let mut a = Matrix::zeros(d, d);
        a.set_block(0, p, &cxy);
        a.set_block(p, 0, &cxy.transpose());
        let mut b = Matrix::zeros(d, d);
        b.set_block(0, 0, &cxx);
        b.set_block(p, p, &cyy);
        // Regularize relative to the average variance so κ means the
        // same thing across differently scaled inputs.
        let avg_var = vector::sum_iter((0..d).map(|i| b[(i, i)])) / d as f64;
        let kappa = opts.regularization * avg_var.max(1e-12);
        b.add_diagonal(kappa);

        let eig = GeneralizedEigen::new(&a, &b)?;
        let keep = opts.components.min(p.min(q));
        let mut correlations = Vec::with_capacity(keep);
        let mut wx = Matrix::zeros(p, keep);
        let mut wy = Matrix::zeros(q, keep);
        for k in 0..keep {
            // Eigenvalues are sorted descending; the top `keep` are the
            // positive half of the ± pairs.
            correlations.push(eig.values[k].clamp(-1.0, 1.0));
            for i in 0..p {
                wx[(i, k)] = eig.vectors[(i, k)];
            }
            for j in 0..q {
                wy[(j, k)] = eig.vectors[(p + j, k)];
            }
        }
        Ok(Cca {
            correlations,
            wx,
            wy,
            x_means,
            y_means,
        })
    }

    /// Number of canonical components kept.
    pub fn components(&self) -> usize {
        self.correlations.len()
    }

    /// Projects one x-side row into canonical space.
    pub fn project_x(&self, row: &[f64]) -> Vec<f64> {
        project(row, &self.x_means, &self.wx)
    }

    /// Projects one y-side row into canonical space.
    pub fn project_y(&self, row: &[f64]) -> Vec<f64> {
        project(row, &self.y_means, &self.wy)
    }

    /// Projects one x-side row into a reusable buffer. After warmup the
    /// buffer's capacity is retained, so steady-state calls allocate
    /// nothing. Bitwise equal to [`Cca::project_x`].
    // qpp-lint: hot-path
    pub fn project_x_into(&self, row: &[f64], out: &mut Vec<f64>) {
        project_into(row, &self.x_means, &self.wx, out)
    }

    /// Projects one y-side row into a reusable buffer.
    pub fn project_y_into(&self, row: &[f64], out: &mut Vec<f64>) {
        project_into(row, &self.y_means, &self.wy, out)
    }

    /// Projects every row of an x-side matrix.
    pub fn project_x_matrix(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.components());
        for i in 0..x.rows() {
            out.row_mut(i).copy_from_slice(&self.project_x(x.row(i)));
        }
        out
    }

    /// Projects every row of a y-side matrix.
    pub fn project_y_matrix(&self, y: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(y.rows(), self.components());
        for i in 0..y.rows() {
            out.row_mut(i).copy_from_slice(&self.project_y(y.row(i)));
        }
        out
    }
}

fn center(m: &Matrix, means: &[f64]) -> Matrix {
    Matrix::from_fn(m.rows(), m.cols(), |i, j| m[(i, j)] - means[j])
}

fn project(row: &[f64], means: &[f64], w: &Matrix) -> Vec<f64> {
    let mut out = Vec::with_capacity(w.cols());
    project_into(row, means, w, &mut out);
    out
}

// qpp-lint: hot-path
fn project_into(row: &[f64], means: &[f64], w: &Matrix, out: &mut Vec<f64>) {
    debug_assert_eq!(row.len(), w.rows());
    out.clear();
    out.resize(w.cols(), 0.0);
    for (i, (&v, &mu)) in row.iter().zip(means.iter()).enumerate() {
        let c = v - mu;
        if c == 0.0 {
            continue;
        }
        for (k, o) in out.iter_mut().enumerate() {
            *o += c * w[(i, k)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds paired datasets sharing one latent variable.
    fn correlated_data(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 3);
        let mut y = Matrix::zeros(n, 2);
        for i in 0..n {
            let latent: f64 = rng.random_range(-1.0..1.0);
            x[(i, 0)] = latent + 0.01 * rng.random_range(-1.0..1.0);
            x[(i, 1)] = rng.random_range(-1.0..1.0);
            x[(i, 2)] = -0.5 * latent + 0.01 * rng.random_range(-1.0..1.0);
            y[(i, 0)] = 2.0 * latent + 0.01 * rng.random_range(-1.0..1.0);
            y[(i, 1)] = rng.random_range(-1.0..1.0);
        }
        (x, y)
    }

    #[test]
    fn recovers_shared_latent_direction() {
        let (x, y) = correlated_data(200, 1);
        let cca = Cca::fit(
            &x,
            &y,
            CcaOptions {
                components: 2,
                regularization: 1e-4,
            },
        )
        .unwrap();
        assert!(
            cca.correlations[0] > 0.95,
            "top correlation {}",
            cca.correlations[0]
        );
        // The projections themselves must correlate: check empirically.
        let px = cca.project_x_matrix(&x).col(0);
        let py = cca.project_y_matrix(&y).col(0);
        let r = pearson(&px, &py);
        assert!(r.abs() > 0.95, "projection correlation {r}");
    }

    #[test]
    fn uncorrelated_data_has_low_correlation() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 300;
        let x = Matrix::from_fn(n, 3, |_, _| rng.random_range(-1.0..1.0));
        let y = Matrix::from_fn(n, 2, |_, _| rng.random_range(-1.0..1.0));
        let cca = Cca::fit(&x, &y, CcaOptions::default()).unwrap();
        assert!(
            cca.correlations[0] < 0.35,
            "spurious correlation {}",
            cca.correlations[0]
        );
    }

    #[test]
    fn components_capped_by_dimensions() {
        let (x, y) = correlated_data(50, 5);
        let cca = Cca::fit(
            &x,
            &y,
            CcaOptions {
                components: 10,
                regularization: 1e-3,
            },
        )
        .unwrap();
        assert_eq!(cca.components(), 2); // min(3, 2)
    }

    #[test]
    fn project_into_is_bitwise_equal_to_project() {
        let (x, y) = correlated_data(60, 11);
        let cca = Cca::fit(&x, &y, CcaOptions::default()).unwrap();
        let mut buf = Vec::new();
        for i in 0..5 {
            let owned = cca.project_x(x.row(i));
            cca.project_x_into(x.row(i), &mut buf);
            assert_eq!(owned.len(), buf.len());
            for (a, b) in owned.iter().zip(buf.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let x = Matrix::zeros(10, 2);
        let y = Matrix::zeros(9, 2);
        assert!(Cca::fit(&x, &y, CcaOptions::default()).is_err());
    }

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for (&x, &y) in a.iter().zip(b.iter()) {
            num += (x - ma) * (y - mb);
            da += (x - ma) * (x - ma);
            db += (y - mb) * (y - mb);
        }
        num / (da.sqrt() * db.sqrt()).max(1e-12)
    }
}
