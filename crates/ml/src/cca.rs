//! Regularized linear Canonical Correlation Analysis.
//!
//! Finds directions `wx`, `wy` maximizing `corr(X wx, Y wy)` via the
//! generalized symmetric eigenproblem (paper §V-D / Eq. 2 structure):
//!
//! ```text
//! [ 0    Cxy ] [wx]       [ Cxx + κI   0        ] [wx]
//! [ Cyx  0   ] [wy] = ρ · [ 0          Cyy + κI ] [wy]
//! ```
//!
//! Eigenvalues come in ±ρ pairs; the positive ones are the canonical
//! correlations. This module is also the computational backend of
//! [`crate::kcca`]: KCCA is linear CCA applied to incomplete-Cholesky
//! feature embeddings.
//!
//! Because `B` is block-diagonal the dense problem factors exactly: the
//! canonical correlations are the singular values of
//! `M = Lx⁻¹ Cxy Ly⁻ᵀ` (`p x q`, with `Bx = Lx Lxᵀ`, `By = Ly Lyᵀ`),
//! and `wx = Lx⁻ᵀ u`, `wy = Ly⁻ᵀ v`. The default
//! [`CcaMethod::ReducedSvd`] path exploits this, extracting only the
//! top `components` triplets by deterministic subspace iteration
//! ([`qpp_linalg::svd`]) instead of Jacobi-sweeping the full
//! `(p+q) x (p+q)` generalized problem — the difference between a
//! ~3.7 s and a millisecond-scale eigensolve at ICD rank 256. The dense
//! [`CcaMethod::DenseGeneralized`] path is retained for equivalence
//! testing.

use qpp_linalg::{stats, svd, vector, Cholesky, GeneralizedEigen, LinalgError, Matrix, SvdOptions};
use serde::{Deserialize, Serialize};

/// Slack on the mathematical bound `|ρ| <= 1`: values within the slack
/// are rounding noise and are clamped; values beyond it mean the solver
/// blew up (ill-conditioned `B`, λ ≫ 1) and must be rejected, not
/// laundered into a perfect correlation of 1.0.
const CORRELATION_SLACK: f64 = 1e-6;

/// Which eigensolver backs [`Cca::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CcaMethod {
    /// Reduce to the `p x q` correlation matrix via block Cholesky and
    /// extract the top `components` singular triplets by deterministic
    /// blocked subspace iteration. The default: cost scales with the
    /// number of components kept, not the full spectrum.
    ReducedSvd,
    /// Assemble the dense `(p+q) x (p+q)` generalized eigenproblem and
    /// Jacobi-solve the whole spectrum. Retained as the reference
    /// implementation for equivalence tests.
    DenseGeneralized,
}

/// Options for [`Cca::fit`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CcaOptions {
    /// Number of canonical components to keep (capped by min(p, q)).
    pub components: usize,
    /// Ridge regularization κ added to the within-set covariances.
    pub regularization: f64,
    /// Eigensolver selection (see [`CcaMethod`]).
    pub method: CcaMethod,
}

impl Default for CcaOptions {
    fn default() -> Self {
        CcaOptions {
            components: 8,
            regularization: 1e-3,
            method: CcaMethod::ReducedSvd,
        }
    }
}

/// A fitted CCA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cca {
    /// Canonical correlations, descending (length = components kept).
    pub correlations: Vec<f64>,
    wx: Matrix,
    wy: Matrix,
    x_means: Vec<f64>,
    y_means: Vec<f64>,
}

impl Cca {
    /// Fits CCA on paired rows of `x` (`n x p`) and `y` (`n x q`).
    pub fn fit(x: &Matrix, y: &Matrix, opts: CcaOptions) -> Result<Cca, LinalgError> {
        if x.rows() != y.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "cca fit",
                lhs: x.shape(),
                rhs: y.shape(),
            });
        }
        let n = x.rows();
        if n < 2 {
            return Err(LinalgError::Empty("cca needs >= 2 rows"));
        }
        let (p, q) = (x.cols(), y.cols());
        let x_means = stats::column_means(x);
        let y_means = stats::column_means(y);
        let xc = center(x, &x_means);
        let yc = center(y, &y_means);

        let scale = 1.0 / n as f64;
        let cxx = xc.gram().scale(scale);
        let cyy = yc.gram().scale(scale);
        let cxy = xc.transpose().matmul(&yc)?.scale(scale);

        // Regularize relative to the average variance so κ means the
        // same thing across differently scaled inputs.
        let d = p + q;
        let avg_var = vector::sum_iter(
            (0..p)
                .map(|i| cxx[(i, i)])
                .chain((0..q).map(|j| cyy[(j, j)])),
        ) / d as f64;
        let kappa = opts.regularization * avg_var.max(1e-12);

        let keep = opts.components.min(p.min(q));
        let (correlations, wx, wy) = match opts.method {
            CcaMethod::ReducedSvd => Cca::fit_reduced_svd(&cxx, &cyy, &cxy, kappa, keep)?,
            CcaMethod::DenseGeneralized => {
                Cca::fit_dense_generalized(&cxx, &cyy, &cxy, kappa, keep)?
            }
        };
        Ok(Cca {
            correlations,
            wx,
            wy,
            x_means,
            y_means,
        })
    }

    /// Reduced path: with block-diagonal `B` the generalized problem
    /// factors into a plain SVD. Factor `Bx = Lx Lxᵀ`, `By = Ly Lyᵀ`,
    /// form `M = Lx⁻¹ Cxy Ly⁻ᵀ` (`p x q`), take its top `keep` singular
    /// triplets by subspace iteration, and back-transform
    /// `wx = Lx⁻ᵀ u`, `wy = Ly⁻ᵀ v`. Each weight column satisfies
    /// `wᵀ B w = 1` on its own side.
    fn fit_reduced_svd(
        cxx: &Matrix,
        cyy: &Matrix,
        cxy: &Matrix,
        kappa: f64,
        keep: usize,
    ) -> Result<(Vec<f64>, Matrix, Matrix), LinalgError> {
        let (p, q) = cxy.shape();
        let (lx, ly, m) = {
            let _s = qpp_obs::span(qpp_obs::Stage::TrainEigenReduce);
            let mut bx = cxx.clone();
            bx.add_diagonal(kappa);
            let mut by = cyy.clone();
            by.add_diagonal(kappa);
            let jx = 1e-12 * bx.max_abs().max(1e-30);
            let jy = 1e-12 * by.max_abs().max(1e-30);
            let lx = Cholesky::with_jitter(&bx, jx, 10)?;
            let ly = Cholesky::with_jitter(&by, jy, 10)?;
            // M = Lx⁻¹ Cxy Ly⁻ᵀ: forward-substitute Cxy through Lx,
            // then its transpose through Ly.
            let x = lx.forward_substitute_matrix(cxy)?;
            let m = ly.forward_substitute_matrix(&x.transpose())?.transpose();
            (lx, ly, m)
        };

        let decomposition = {
            let mut s = qpp_obs::span(qpp_obs::Stage::TrainEigenSubspace);
            let svd = svd::truncated_svd(&m, keep, SvdOptions::default())?;
            s.set_value(svd.iterations as u64);
            svd
        };

        let _s = qpp_obs::span(qpp_obs::Stage::TrainEigenBacktransform);
        let mut correlations = Vec::with_capacity(keep);
        let mut wx = Matrix::zeros(p, keep);
        let mut wy = Matrix::zeros(q, keep);
        for k in 0..keep {
            correlations.push(validated_correlation(decomposition.singular_values[k])?);
            let u = lx.back_substitute(&decomposition.u.col(k))?;
            let v = ly.back_substitute(&decomposition.v.col(k))?;
            for i in 0..p {
                wx[(i, k)] = u[i];
            }
            for j in 0..q {
                wy[(j, k)] = v[j];
            }
        }
        Ok((correlations, wx, wy))
    }

    /// Dense reference path: assemble the full `(p+q) x (p+q)` blocked
    /// generalized eigenproblem and Jacobi-solve the whole spectrum.
    fn fit_dense_generalized(
        cxx: &Matrix,
        cyy: &Matrix,
        cxy: &Matrix,
        kappa: f64,
        keep: usize,
    ) -> Result<(Vec<f64>, Matrix, Matrix), LinalgError> {
        let (p, q) = cxy.shape();
        let d = p + q;
        let mut a = Matrix::zeros(d, d);
        a.set_block(0, p, cxy);
        a.set_block(p, 0, &cxy.transpose());
        let mut b = Matrix::zeros(d, d);
        b.set_block(0, 0, cxx);
        b.set_block(p, p, cyy);
        b.add_diagonal(kappa);

        let eig = GeneralizedEigen::new(&a, &b)?;
        let mut correlations = Vec::with_capacity(keep);
        let mut wx = Matrix::zeros(p, keep);
        let mut wy = Matrix::zeros(q, keep);
        for k in 0..keep {
            // Eigenvalues are sorted descending; the top `keep` are the
            // positive half of the ± pairs.
            correlations.push(validated_correlation(eig.values[k])?);
            for i in 0..p {
                wx[(i, k)] = eig.vectors[(i, k)];
            }
            for j in 0..q {
                wy[(j, k)] = eig.vectors[(p + j, k)];
            }
        }
        Ok((correlations, wx, wy))
    }

    /// Number of canonical components kept.
    pub fn components(&self) -> usize {
        self.correlations.len()
    }

    /// Projects one x-side row into canonical space.
    pub fn project_x(&self, row: &[f64]) -> Vec<f64> {
        project(row, &self.x_means, &self.wx)
    }

    /// Projects one y-side row into canonical space.
    pub fn project_y(&self, row: &[f64]) -> Vec<f64> {
        project(row, &self.y_means, &self.wy)
    }

    /// Projects one x-side row into a reusable buffer. After warmup the
    /// buffer's capacity is retained, so steady-state calls allocate
    /// nothing. Bitwise equal to [`Cca::project_x`].
    // qpp-lint: hot-path
    pub fn project_x_into(&self, row: &[f64], out: &mut Vec<f64>) {
        project_into(row, &self.x_means, &self.wx, out)
    }

    /// Projects one y-side row into a reusable buffer.
    pub fn project_y_into(&self, row: &[f64], out: &mut Vec<f64>) {
        project_into(row, &self.y_means, &self.wy, out)
    }

    /// Projects every row of an x-side matrix.
    pub fn project_x_matrix(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.components());
        for i in 0..x.rows() {
            out.row_mut(i).copy_from_slice(&self.project_x(x.row(i)));
        }
        out
    }

    /// Projects every row of a y-side matrix.
    pub fn project_y_matrix(&self, y: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(y.rows(), self.components());
        for i in 0..y.rows() {
            out.row_mut(i).copy_from_slice(&self.project_y(y.row(i)));
        }
        out
    }
}

/// Validates a raw solver output against the mathematical bound
/// `|ρ| <= 1`. Rounding noise inside [`CORRELATION_SLACK`] is clamped;
/// anything further out is a solver blow-up (e.g. λ ≫ 1 from an
/// ill-conditioned `B`) that an unconditional `clamp(-1.0, 1.0)` used
/// to mask as a perfect correlation.
fn validated_correlation(rho: f64) -> Result<f64, LinalgError> {
    if !rho.is_finite() {
        return Err(LinalgError::NonFinite {
            op: "canonical correlation",
        });
    }
    if rho.abs() > 1.0 + CORRELATION_SLACK {
        return Err(LinalgError::OutOfRange {
            what: "canonical correlation",
            value: rho,
            bound: 1.0,
        });
    }
    Ok(rho.clamp(-1.0, 1.0))
}

fn center(m: &Matrix, means: &[f64]) -> Matrix {
    Matrix::from_fn(m.rows(), m.cols(), |i, j| m[(i, j)] - means[j])
}

fn project(row: &[f64], means: &[f64], w: &Matrix) -> Vec<f64> {
    let mut out = Vec::with_capacity(w.cols());
    project_into(row, means, w, &mut out);
    out
}

// The cache-blocked gemv is bitwise equal to the naive
// center-skip-accumulate loop that used to live here (see
// `Matrix::gemv_t_centered_into` and the property test pinning it), so
// this stays the single projection kernel for both owned and `_into`
// paths.
// qpp-lint: hot-path
fn project_into(row: &[f64], means: &[f64], w: &Matrix, out: &mut Vec<f64>) {
    debug_assert_eq!(row.len(), w.rows());
    w.gemv_t_centered_into(row, means, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds paired datasets sharing one latent variable.
    fn correlated_data(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 3);
        let mut y = Matrix::zeros(n, 2);
        for i in 0..n {
            let latent: f64 = rng.random_range(-1.0..1.0);
            x[(i, 0)] = latent + 0.01 * rng.random_range(-1.0..1.0);
            x[(i, 1)] = rng.random_range(-1.0..1.0);
            x[(i, 2)] = -0.5 * latent + 0.01 * rng.random_range(-1.0..1.0);
            y[(i, 0)] = 2.0 * latent + 0.01 * rng.random_range(-1.0..1.0);
            y[(i, 1)] = rng.random_range(-1.0..1.0);
        }
        (x, y)
    }

    #[test]
    fn recovers_shared_latent_direction() {
        let (x, y) = correlated_data(200, 1);
        let cca = Cca::fit(
            &x,
            &y,
            CcaOptions {
                components: 2,
                regularization: 1e-4,
                ..CcaOptions::default()
            },
        )
        .unwrap();
        assert!(
            cca.correlations[0] > 0.95,
            "top correlation {}",
            cca.correlations[0]
        );
        // The projections themselves must correlate: check empirically.
        let px = cca.project_x_matrix(&x).col(0);
        let py = cca.project_y_matrix(&y).col(0);
        let r = pearson(&px, &py);
        assert!(r.abs() > 0.95, "projection correlation {r}");
    }

    #[test]
    fn uncorrelated_data_has_low_correlation() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 300;
        let x = Matrix::from_fn(n, 3, |_, _| rng.random_range(-1.0..1.0));
        let y = Matrix::from_fn(n, 2, |_, _| rng.random_range(-1.0..1.0));
        let cca = Cca::fit(&x, &y, CcaOptions::default()).unwrap();
        assert!(
            cca.correlations[0] < 0.35,
            "spurious correlation {}",
            cca.correlations[0]
        );
    }

    #[test]
    fn components_capped_by_dimensions() {
        let (x, y) = correlated_data(50, 5);
        let cca = Cca::fit(
            &x,
            &y,
            CcaOptions {
                components: 10,
                regularization: 1e-3,
                ..CcaOptions::default()
            },
        )
        .unwrap();
        assert_eq!(cca.components(), 2); // min(3, 2)
    }

    #[test]
    fn project_into_is_bitwise_equal_to_project() {
        let (x, y) = correlated_data(60, 11);
        let cca = Cca::fit(&x, &y, CcaOptions::default()).unwrap();
        let mut buf = Vec::new();
        for i in 0..5 {
            let owned = cca.project_x(x.row(i));
            cca.project_x_into(x.row(i), &mut buf);
            assert_eq!(owned.len(), buf.len());
            for (a, b) in owned.iter().zip(buf.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let x = Matrix::zeros(10, 2);
        let y = Matrix::zeros(9, 2);
        assert!(Cca::fit(&x, &y, CcaOptions::default()).is_err());
    }

    #[test]
    fn out_of_range_correlations_are_rejected_not_clamped() {
        // In-slack rounding noise is clamped to the bound …
        assert_eq!(validated_correlation(1.0 + 1e-9).unwrap(), 1.0);
        assert_eq!(validated_correlation(-1.0 - 1e-9).unwrap(), -1.0);
        assert_eq!(validated_correlation(0.5).unwrap(), 0.5);
        // … but a blown-up eigenvalue is an error, never a silent 1.0
        // (the old `clamp(-1.0, 1.0)` reported exactly that).
        assert!(matches!(
            validated_correlation(1.5),
            Err(LinalgError::OutOfRange { value, .. }) if value == 1.5
        ));
        assert!(matches!(
            validated_correlation(-37.0),
            Err(LinalgError::OutOfRange { .. })
        ));
        assert!(matches!(
            validated_correlation(f64::NAN),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn dense_method_still_available_and_agrees_on_top_correlation() {
        let (x, y) = correlated_data(200, 1);
        let reduced = Cca::fit(
            &x,
            &y,
            CcaOptions {
                components: 2,
                regularization: 1e-4,
                method: CcaMethod::ReducedSvd,
            },
        )
        .unwrap();
        let dense = Cca::fit(
            &x,
            &y,
            CcaOptions {
                components: 2,
                regularization: 1e-4,
                method: CcaMethod::DenseGeneralized,
            },
        )
        .unwrap();
        for (r, d) in reduced.correlations.iter().zip(dense.correlations.iter()) {
            assert!((r - d).abs() < 1e-8, "reduced {r} vs dense {d}");
        }
    }

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for (&x, &y) in a.iter().zip(b.iter()) {
            num += (x - ma) * (y - mb);
            da += (x - ma) * (x - ma);
            db += (y - mb) * (y - mb);
        }
        num / (da.sqrt() * db.sqrt()).max(1e-12)
    }
}
