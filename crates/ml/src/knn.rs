//! k-nearest-neighbor lookup in projection space.
//!
//! The paper's prediction step (§VI-B, Fig. 7): project the new query,
//! find its k nearest training neighbors in the query projection, and
//! combine their measured performance vectors. §VI-E evaluates the
//! three design choices reproduced here:
//!
//! * distance metric — Euclidean vs. cosine (Table I; Euclidean won);
//! * k — 3..7 (Table II; negligible differences, k=3 chosen);
//! * weighting — equal vs. 3:2:1 vs. distance-proportional (Table III;
//!   no consistent winner, equal chosen).

use crate::kmeans::KMeansError;
use qpp_linalg::{vector, Matrix};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Reference rows scanned per parallel work chunk. Paper-scale indexes
/// (~1000 training points) fit in one chunk — the scan stays serial and
/// identical to the historical one — while larger references fan out
/// across the pool.
const SCAN_CHUNK: usize = 2048;

/// Errors from neighbor prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnError {
    /// The reference matrix has no rows to search.
    EmptyReference,
    /// Every reference row sits at a non-finite distance from the probe
    /// (e.g. the probe carries a NaN component), so no neighbor is
    /// usable.
    NoFiniteNeighbors,
    /// The targets matrix does not have one row per reference row.
    TargetMismatch {
        /// Rows in the targets matrix.
        targets: usize,
        /// Rows in the reference matrix.
        reference: usize,
    },
    /// Building the IVF coarse quantizer failed (degenerate k or an
    /// all-corrupt reference); see [`crate::ann::IvfIndex::build`].
    IndexBuild(KMeansError),
}

impl fmt::Display for KnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnnError::EmptyReference => write!(f, "knn reference is empty"),
            KnnError::NoFiniteNeighbors => {
                write!(f, "no reference row is at a finite distance from the probe")
            }
            KnnError::TargetMismatch { targets, reference } => write!(
                f,
                "targets must align with reference rows ({targets} target rows \
                 vs {reference} reference rows)"
            ),
            KnnError::IndexBuild(e) => write!(f, "ann index build failed: {e}"),
        }
    }
}

impl std::error::Error for KnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KnnError::IndexBuild(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KMeansError> for KnnError {
    fn from(e: KMeansError) -> Self {
        KnnError::IndexBuild(e)
    }
}

/// Distance metric for neighbor search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistanceMetric {
    /// Magnitude-aware Euclidean distance (the paper's winner).
    Euclidean,
    /// Direction-only cosine distance.
    Cosine,
}

impl DistanceMetric {
    /// Distance between two vectors under this metric.
    pub fn distance(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            DistanceMetric::Euclidean => vector::dist(a, b),
            DistanceMetric::Cosine => vector::cosine_dist(a, b),
        }
    }
}

/// How neighbor target vectors are combined into a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NeighborWeighting {
    /// Equal weight for all k neighbors (the paper's choice).
    Equal,
    /// Fixed 3:2:1-style ratio by nearness rank (k weights `k, k-1, …, 1`).
    RankRatio,
    /// Weight inversely proportional to distance.
    InverseDistance,
}

impl NeighborWeighting {
    /// Weights for neighbors sorted by ascending distance.
    pub fn weights(self, distances: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(distances.len());
        self.weights_for(distances.iter().copied(), &mut out);
        out
    }

    /// Weights for neighbors found by [`NearestNeighbors::query`],
    /// written into a reusable buffer. Bitwise equal to
    /// [`NeighborWeighting::weights`] on the same distances.
    // qpp-lint: hot-path
    pub fn weights_into(self, neighbors: &[Neighbor], out: &mut Vec<f64>) {
        self.weights_for(neighbors.iter().map(|n| n.distance), out)
    }

    /// Shared raw-weight / normalize pipeline: fill `out` with the raw
    /// scheme weights, then divide by their sum.
    // qpp-lint: hot-path
    fn weights_for(self, distances: impl ExactSizeIterator<Item = f64>, out: &mut Vec<f64>) {
        let k = distances.len();
        out.clear();
        match self {
            NeighborWeighting::Equal => out.extend((0..k).map(|_| 1.0)),
            NeighborWeighting::RankRatio => out.extend((0..k).map(|i| (k - i) as f64)),
            NeighborWeighting::InverseDistance => out.extend(distances.map(|d| 1.0 / (d + 1e-9))),
        }
        let total = vector::sum(out);
        for w in out.iter_mut() {
            *w /= total;
        }
    }
}

/// A found neighbor: training-row index and distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row index into the reference matrix.
    pub index: usize,
    /// Distance from the probe under the chosen metric.
    pub distance: f64,
}

/// Nearest-neighbor index over the rows of a reference matrix.
///
/// Linear scan — exact, cache-friendly, and fast at the scale of the
/// paper's training sets (~1000 points, ≤16 projection dims).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NearestNeighbors {
    reference: Matrix,
    metric: DistanceMetric,
}

impl NearestNeighbors {
    /// Builds an index over `reference` rows with the given metric.
    pub fn new(reference: Matrix, metric: DistanceMetric) -> Self {
        NearestNeighbors { reference, metric }
    }

    /// Number of reference points.
    pub fn len(&self) -> usize {
        self.reference.rows()
    }

    /// The distance metric this index was built with.
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.reference.rows() == 0
    }

    /// The `k` nearest neighbors of `probe`, ascending by distance,
    /// ties broken by ascending row index.
    ///
    /// Rows at a non-finite distance from the probe are skipped: a NaN
    /// distance compares false against everything, which used to make
    /// `partition_point` park the NaN neighbor unsorted at the *front*
    /// of the result, poisoning the prediction. The scan runs in fixed
    /// [`SCAN_CHUNK`]-row chunks across the worker pool, with per-chunk
    /// top-k buffers merged in `(distance, index)` order — exactly the
    /// serial scan's outcome, for any thread count.
    // qpp-lint: cold-path — the chunked parallel scan allocates per-chunk
    // buffers and result vectors by design; `query_into` only takes this
    // branch when the reference outgrows a single scan chunk, where the
    // scan itself dwarfs the allocations.
    pub fn query(&self, probe: &[f64], k: usize) -> Vec<Neighbor> {
        let k = k.min(self.len());
        if k == 0 {
            return Vec::new();
        }
        let per_chunk = qpp_par::parallel_for_chunks(self.len(), SCAN_CHUNK, |chunk| {
            // Max-heap-free selection: keep a sorted buffer of size k.
            let mut best: Vec<Neighbor> = Vec::with_capacity(k + 1);
            for i in chunk.range.clone() {
                let d = self.metric.distance(probe, self.reference.row(i));
                push_top_k(&mut best, k, i, d);
            }
            best
        });
        merge_top_k(per_chunk, k)
    }

    /// Like [`NearestNeighbors::query`], writing into a reusable buffer.
    ///
    /// References that fit in a single scan chunk (the paper-scale case)
    /// are scanned serially — the identical loop a one-chunk parallel
    /// scan runs, so results are bitwise equal — and, once `out` has
    /// warmed up to capacity `k + 1`, without any heap allocation.
    /// Larger references delegate to the chunked parallel scan.
    // qpp-lint: hot-path
    pub fn query_into(&self, probe: &[f64], k: usize, out: &mut Vec<Neighbor>) {
        out.clear();
        let k = k.min(self.len());
        if k == 0 {
            return;
        }
        if self.len() > SCAN_CHUNK {
            out.extend(self.query(probe, k));
            return;
        }
        out.reserve(k + 1);
        for i in 0..self.len() {
            let d = self.metric.distance(probe, self.reference.row(i));
            push_top_k(out, k, i, d);
        }
    }

    /// Predicts a target vector for `probe` by combining the `targets`
    /// rows of the k nearest neighbors under `weighting`.
    ///
    /// Returns the prediction and the neighbors used. Fails when the
    /// targets are misaligned with the reference, when the reference is
    /// empty, or when no reference row is at a finite distance from the
    /// probe — the latter two used to yield a silent all-zero prediction
    /// with an empty neighbor list.
    pub fn predict(
        &self,
        probe: &[f64],
        targets: &Matrix,
        k: usize,
        weighting: NeighborWeighting,
    ) -> Result<(Vec<f64>, Vec<Neighbor>), KnnError> {
        let mut scratch = KnnScratch::new();
        let mut out = Vec::with_capacity(targets.cols());
        self.predict_into(probe, targets, k, weighting, &mut scratch, &mut out)?;
        Ok((out, scratch.neighbors))
    }

    /// Like [`NearestNeighbors::predict`], writing the prediction into
    /// `out` and the neighbors used into `scratch.neighbors`. With warm
    /// buffers and a reference that fits one scan chunk, this performs
    /// no heap allocation. Bitwise equal to
    /// [`NearestNeighbors::predict`].
    // qpp-lint: hot-path
    pub fn predict_into(
        &self,
        probe: &[f64],
        targets: &Matrix,
        k: usize,
        weighting: NeighborWeighting,
        scratch: &mut KnnScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), KnnError> {
        if targets.rows() != self.len() {
            return Err(KnnError::TargetMismatch {
                targets: targets.rows(),
                reference: self.len(),
            });
        }
        if self.is_empty() {
            return Err(KnnError::EmptyReference);
        }
        self.query_into(probe, k, &mut scratch.neighbors);
        if scratch.neighbors.is_empty() {
            return Err(KnnError::NoFiniteNeighbors);
        }
        combine_neighbors(
            targets,
            &scratch.neighbors,
            weighting,
            &mut scratch.weights,
            out,
        );
        Ok(())
    }
}

/// Offers `(index, distance)` to a sorted top-`k` buffer.
///
/// This is *the* selection step of every scan in this crate — the serial
/// probe, each parallel chunk, and the IVF list rescans all funnel
/// through it, which is what makes their results bitwise comparable.
/// Non-finite distances are rejected (a NaN would land unsorted at the
/// front, because `NaN <= d` is false for every `d`); finite ones are
/// placed by `partition_point(|n| n.distance <= d)`, so equal distances
/// keep first-seen (ascending-index) order, and the buffer never grows
/// past `k` entries.
// qpp-lint: hot-path
pub(crate) fn push_top_k(best: &mut Vec<Neighbor>, k: usize, index: usize, distance: f64) {
    if !distance.is_finite() {
        return;
    }
    if best.len() < k || distance < best.last().map_or(f64::INFINITY, |n| n.distance) {
        let pos = best.partition_point(|n| n.distance <= distance);
        best.insert(pos, Neighbor { index, distance });
        if best.len() > k {
            best.pop();
        }
    }
}

/// Combines the `targets` rows of already-found neighbors into a
/// prediction under `weighting` — the shared tail of
/// [`NearestNeighbors::predict_into`] and the IVF predict path.
// qpp-lint: hot-path
pub(crate) fn combine_neighbors(
    targets: &Matrix,
    neighbors: &[Neighbor],
    weighting: NeighborWeighting,
    weights: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    weighting.weights_into(neighbors, weights);
    out.clear();
    out.resize(targets.cols(), 0.0);
    for (n, &w) in neighbors.iter().zip(weights.iter()) {
        vector::axpy(w, targets.row(n.index), out);
    }
}

/// Reusable buffers for [`NearestNeighbors::predict_into`] and the IVF
/// probe path: the sorted neighbor list, the combination weights, and
/// the per-list buffers the inverted-file rescan fills. One scratch per
/// worker thread is enough; buffers grow on first use (the list pool is
/// grow-only) and are then recycled.
#[derive(Debug, Default, Clone)]
pub struct KnnScratch {
    /// Neighbors found by the last `predict_into` call, ascending by
    /// distance.
    pub neighbors: Vec<Neighbor>,
    pub(crate) weights: Vec<f64>,
    /// Nearest coarse centroids (IVF probe step).
    pub(crate) probed: Vec<Neighbor>,
    /// Per-probed-list top-k buffers, merged by [`merge_top_k_into`].
    /// `Vec<Vec<Neighbor>>` is deliberate: each inner buffer must keep
    /// its capacity across calls so the steady-state rescan is
    /// alloc-free.
    pub(crate) lists: Vec<Vec<Neighbor>>,
    /// Merge cursors, one per probed list.
    pub(crate) heads: Vec<usize>,
}

impl KnnScratch {
    /// Empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        KnnScratch::default()
    }
}

/// Ordered k-way merge of per-chunk top-k lists (each already sorted by
/// ascending distance, with chunk-local indexes ascending within ties).
///
/// Selecting the minimum by `(distance, index)` reproduces the serial
/// scan's tie-breaking — first-seen (lowest-index) row wins — so the
/// merged result is independent of how chunks were scheduled.
fn merge_top_k(mut lists: Vec<Vec<Neighbor>>, k: usize) -> Vec<Neighbor> {
    if let [single] = &mut lists[..] {
        return std::mem::take(single);
    }
    let mut heads = Vec::with_capacity(lists.len());
    let mut out = Vec::with_capacity(k);
    merge_top_k_into(&lists, k, &mut heads, &mut out);
    out
}

/// The allocation-free core of [`merge_top_k`], shared with the IVF
/// probe path: `heads` holds one cursor per list, `out` receives at most
/// `k` merged neighbors. Both buffers are cleared and refilled, so warm
/// callers pay no heap traffic. An empty `lists` slice — or lists with
/// fewer than `k` entries in total — simply yields fewer results.
// qpp-lint: hot-path
pub(crate) fn merge_top_k_into(
    lists: &[Vec<Neighbor>],
    k: usize,
    heads: &mut Vec<usize>,
    out: &mut Vec<Neighbor>,
) {
    heads.clear();
    heads.resize(lists.len(), 0);
    out.clear();
    while out.len() < k {
        let mut best: Option<(usize, Neighbor)> = None;
        for (li, list) in lists.iter().enumerate() {
            if let Some(&n) = list.get(heads[li]) {
                let closer = match &best {
                    None => true,
                    Some((_, b)) => (n.distance, n.index) < (b.distance, b.index),
                };
                if closer {
                    best = Some((li, n));
                }
            }
        }
        match best {
            Some((li, n)) => {
                heads[li] += 1;
                out.push(n);
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0, 5.0],
            vec![10.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn finds_nearest_in_order() {
        let nn = NearestNeighbors::new(reference(), DistanceMetric::Euclidean);
        let res = nn.query(&[0.1, 0.0], 3);
        assert_eq!(res[0].index, 0);
        assert_eq!(res[1].index, 1);
        assert_eq!(res[2].index, 2);
        assert!(res[0].distance <= res[1].distance);
    }

    #[test]
    fn cosine_prefers_direction_over_magnitude() {
        let nn = NearestNeighbors::new(reference(), DistanceMetric::Cosine);
        // Probe along +x: cosine says the 10,0 point is as close as 1,0.
        let res = nn.query(&[2.0, 0.0], 2);
        let idx: Vec<usize> = res.iter().map(|n| n.index).collect();
        assert!(idx.contains(&1) && idx.contains(&4), "{idx:?}");
    }

    #[test]
    fn k_capped_by_reference_size() {
        let nn = NearestNeighbors::new(reference(), DistanceMetric::Euclidean);
        assert_eq!(nn.query(&[0.0, 0.0], 99).len(), 5);
    }

    #[test]
    fn equal_weighting_averages() {
        let nn = NearestNeighbors::new(reference(), DistanceMetric::Euclidean);
        let targets =
            Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![100.0], vec![100.0]])
                .unwrap();
        let (pred, neigh) = nn
            .predict(&[0.0, 0.0], &targets, 3, NeighborWeighting::Equal)
            .unwrap();
        assert_eq!(neigh.len(), 3);
        assert!((pred[0] - 2.0).abs() < 1e-12); // mean of 1, 2, 3
    }

    #[test]
    fn nan_probe_component_is_rejected_not_front_inserted() {
        // Regression: a NaN distance used to land *first* in the sorted
        // buffer (partition_point returns 0 because NaN <= d is false),
        // silently poisoning the prediction with index-0's targets.
        let nn = NearestNeighbors::new(reference(), DistanceMetric::Euclidean);
        assert!(nn.query(&[f64::NAN, 0.0], 3).is_empty());
        let targets =
            Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![100.0], vec![100.0]])
                .unwrap();
        assert_eq!(
            nn.predict(&[f64::NAN, 0.0], &targets, 3, NeighborWeighting::Equal),
            Err(KnnError::NoFiniteNeighbors)
        );
    }

    #[test]
    fn non_finite_reference_rows_are_skipped() {
        // One corrupt reference row must not shadow the healthy ones.
        let nn = NearestNeighbors::new(
            Matrix::from_rows(&[vec![f64::INFINITY, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap(),
            DistanceMetric::Euclidean,
        );
        let res = nn.query(&[1.0, 0.1], 3);
        assert_eq!(res.len(), 2, "{res:?}");
        assert_eq!(res[0].index, 1);
        assert!(res.iter().all(|n| n.distance.is_finite()));
    }

    #[test]
    fn empty_reference_is_a_typed_error() {
        let nn = NearestNeighbors::new(Matrix::zeros(0, 2), DistanceMetric::Euclidean);
        assert!(nn.query(&[0.0, 0.0], 3).is_empty());
        let targets = Matrix::zeros(0, 1);
        assert_eq!(
            nn.predict(&[0.0, 0.0], &targets, 3, NeighborWeighting::Equal),
            Err(KnnError::EmptyReference)
        );
    }

    #[test]
    fn chunked_scan_matches_serial_scan_bitwise() {
        // A reference big enough to span several scan chunks, probed
        // under 1 and 8 threads: identical neighbors either way, and
        // equal-distance ties resolve to the lowest index.
        let rows: Vec<Vec<f64>> = // allow-vecvec: test fixture
            (0..5000)
                .map(|i| vec![(i % 97) as f64, ((i * 31) % 89) as f64])
                .collect();
        let nn =
            NearestNeighbors::new(Matrix::from_rows(&rows).unwrap(), DistanceMetric::Euclidean);
        let probe = [13.0, 42.0];
        let serial = qpp_par::with_threads(1, || nn.query(&probe, 9));
        let parallel = qpp_par::with_threads(8, || nn.query(&probe, 9));
        assert_eq!(serial.len(), 9);
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.index, p.index);
            assert_eq!(s.distance.to_bits(), p.distance.to_bits());
        }
        // Sorted ascending with index tie-break.
        for w in serial.windows(2) {
            assert!(
                w[0].distance < w[1].distance
                    || (w[0].distance == w[1].distance && w[0].index < w[1].index)
            );
        }
    }

    #[test]
    fn rank_ratio_weights_follow_3_2_1() {
        let w = NeighborWeighting::RankRatio.weights(&[0.1, 0.2, 0.3]);
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert!((w[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((w[2] - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_distance_prefers_closest() {
        let w = NeighborWeighting::InverseDistance.weights(&[0.1, 1.0, 10.0]);
        assert!(w[0] > w[1] && w[1] > w[2]);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_match_has_zero_distance() {
        let nn = NearestNeighbors::new(reference(), DistanceMetric::Euclidean);
        let res = nn.query(&[5.0, 5.0], 1);
        assert_eq!(res[0].index, 3);
        assert_eq!(res[0].distance, 0.0);
        // Inverse-distance weighting must survive a zero distance.
        let w = NeighborWeighting::InverseDistance.weights(&[0.0, 1.0]);
        assert!(w[0] > 0.99);
    }

    fn n(index: usize, distance: f64) -> Neighbor {
        Neighbor { index, distance }
    }

    #[test]
    fn merge_of_no_lists_is_empty() {
        // The IVF probe path hits this when every probed list is empty
        // (all-corrupt partitions) or nothing was probed at all.
        assert!(merge_top_k(Vec::new(), 3).is_empty());
        let mut heads = Vec::new();
        let mut out = vec![n(9, 9.0)]; // stale content must be cleared
        merge_top_k_into(&[], 3, &mut heads, &mut out);
        assert!(out.is_empty());
        merge_top_k_into(&[Vec::new(), Vec::new()], 3, &mut heads, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn merge_with_fewer_than_k_total_returns_everything_in_order() {
        let lists = vec![vec![n(4, 2.0)], Vec::new(), vec![n(1, 0.5), n(7, 3.0)]];
        let merged = merge_top_k(lists.clone(), 10);
        assert_eq!(merged, vec![n(1, 0.5), n(4, 2.0), n(7, 3.0)]);
        // The `_into` core agrees and reuses warm buffers.
        let mut heads = Vec::new();
        let mut out = Vec::new();
        merge_top_k_into(&lists, 10, &mut heads, &mut out);
        assert_eq!(out, merged);
        assert_eq!(heads, vec![1, 0, 2]);
    }

    #[test]
    fn merge_ties_resolve_to_lowest_index_across_lists() {
        // Equal distances in *different* lists must still come out in
        // ascending index order — the serial scan's first-seen rule.
        let lists = vec![vec![n(5, 1.0), n(6, 1.0)], vec![n(0, 1.0), n(9, 2.0)]];
        let merged = merge_top_k(lists, 3);
        assert_eq!(merged, vec![n(0, 1.0), n(5, 1.0), n(6, 1.0)]);
    }

    proptest::proptest! {
        #[test]
        fn merged_lists_match_serial_scan(
            // u8 distances collide often, exercising the index tie-break.
            raw in proptest::collection::vec(0u8..16, 0..64),
            chunk in 1usize..9,
            k in 0usize..8,
        ) {
            let mut serial = Vec::new();
            for (i, &d) in raw.iter().enumerate() {
                push_top_k(&mut serial, k, i, d as f64);
            }
            let lists: Vec<Vec<Neighbor>> = raw
                .chunks(chunk)
                .enumerate()
                .map(|(ci, ds)| {
                    let mut best = Vec::new();
                    for (j, &d) in ds.iter().enumerate() {
                        push_top_k(&mut best, k, ci * chunk + j, d as f64);
                    }
                    best
                })
                .collect();
            let merged = merge_top_k(lists, k);
            proptest::prop_assert_eq!(&merged, &serial);
        }
    }
}
