//! IVF-vs-brute-force equivalence suite — the correctness oracle for
//! the sub-linear neighbor index (DESIGN.md §17).
//!
//! The IVF rescan is exact over the probed cells, so whenever those
//! cells cover the true top-k the result must be *bitwise* identical to
//! the serial brute scan: same neighbor indices, same distance bits,
//! same `(distance, index)` tie-breaking. Exhaustive probing
//! (`nprobe == nlist`) guarantees coverage unconditionally; clustered
//! data with the default probe width exercises the approximate regime.
//! Every comparison is repeated under 1 and 8 worker threads — results
//! must not depend on the pool size, at build time or query time.
//!
//! `ci.sh` gates on this suite actually running (≥ 7 tests), the same
//! pattern as the svd_equivalence gate.

use qpp_linalg::Matrix;
use qpp_ml::{
    AnnIndex, AnnOptions, DistanceMetric, IvfIndex, IvfOptions, NearestNeighbors, NeighborWeighting,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tight, well-separated blobs: `clusters` centers on a coarse grid,
/// `per` points jittered ±0.05 around each. Neighbors of any probe near
/// a center are that blob's points, so a coarse quantizer that finds
/// the blobs gives the default probe width full top-k coverage.
fn blobs(clusters: usize, per: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new(); // allow-vecvec: test fixture
    for c in 0..clusters {
        let cx = (c % 8) as f64 * 10.0;
        let cy = (c / 8) as f64 * 10.0;
        for _ in 0..per {
            rows.push(vec![
                cx + rng.random_range(-0.05..0.05),
                cy + rng.random_range(-0.05..0.05),
            ]);
        }
    }
    Matrix::from_rows(&rows).unwrap()
}

fn assert_bitwise_equal(brute: &[qpp_ml::Neighbor], ivf: &[qpp_ml::Neighbor], what: &str) {
    assert_eq!(brute.len(), ivf.len(), "{what}: neighbor count differs");
    for (i, (b, a)) in brute.iter().zip(ivf.iter()).enumerate() {
        assert_eq!(b.index, a.index, "{what}: neighbor {i} index differs");
        assert_eq!(
            b.distance.to_bits(),
            a.distance.to_bits(),
            "{what}: neighbor {i} distance bits differ"
        );
    }
}

#[test]
fn exhaustive_probe_is_bitwise_identical_to_serial_brute() {
    let data = blobs(24, 200, 1); // 4800 rows
    let nn = NearestNeighbors::new(data.clone(), DistanceMetric::Euclidean);
    let ivf = IvfIndex::build(
        data,
        DistanceMetric::Euclidean,
        IvfOptions {
            nlist: 32,
            nprobe: 32, // exhaustive: coverage holds for every probe
            ..IvfOptions::default()
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    for q in 0..200 {
        let probe = [rng.random_range(-5.0..80.0), rng.random_range(-5.0..30.0)];
        for k in [1, 3, 9] {
            let brute = qpp_par::with_threads(1, || nn.query(&probe, k));
            let approx = ivf.query(&probe, k);
            assert_bitwise_equal(&brute, &approx, &format!("probe {q} k {k}"));
        }
    }
}

#[test]
fn default_nprobe_is_bitwise_identical_on_clustered_data() {
    // The approximate regime: 8 of 24 lists probed. On separated blobs
    // the probed cells still cover the true top-k for probes near the
    // data, so equality stays bitwise — this is the recall argument of
    // DESIGN.md §17 made executable.
    let data = blobs(24, 200, 3);
    let nn = NearestNeighbors::new(data.clone(), DistanceMetric::Euclidean);
    let ivf = IvfIndex::build(
        data.clone(),
        DistanceMetric::Euclidean,
        IvfOptions {
            nlist: 24,
            ..IvfOptions::default() // nprobe: 8
        },
    )
    .unwrap();
    assert_eq!(ivf.nprobe(), 8);
    // Probe at every 17th reference row: its blob-mates are the true
    // neighbors and share its cell.
    for i in (0..data.rows()).step_by(17) {
        let probe = data.row(i);
        let brute = qpp_par::with_threads(1, || nn.query(probe, 5));
        let approx = ivf.query(probe, 5);
        assert_bitwise_equal(&brute, &approx, &format!("reference probe {i}"));
    }
}

#[test]
fn ties_resolve_identically_with_duplicated_rows() {
    // Duplicate every row: equal distances everywhere, so results are
    // decided purely by the (distance, index) tie-break — which must
    // match the serial scan's first-seen order exactly.
    let base = blobs(8, 60, 5);
    let mut rows = Vec::new(); // allow-vecvec: test fixture
    for i in 0..base.rows() {
        rows.push(base.row(i).to_vec());
    }
    for i in 0..base.rows() {
        rows.push(base.row(i).to_vec());
    }
    let data = Matrix::from_rows(&rows).unwrap();
    let nn = NearestNeighbors::new(data.clone(), DistanceMetric::Euclidean);
    let ivf = IvfIndex::build(
        data.clone(),
        DistanceMetric::Euclidean,
        IvfOptions {
            nlist: 12,
            nprobe: 12,
            ..IvfOptions::default()
        },
    )
    .unwrap();
    for i in (0..data.rows()).step_by(23) {
        let brute = qpp_par::with_threads(1, || nn.query(data.row(i), 6));
        let approx = ivf.query(data.row(i), 6);
        assert_bitwise_equal(&brute, &approx, &format!("duplicated probe {i}"));
        // The probe row itself (distance 0) and its duplicate must both
        // surface, lower index first.
        assert_eq!(brute[0].distance, 0.0);
        assert!(brute[0].index < brute[1].index);
    }
}

#[test]
fn build_and_query_are_thread_count_invariant() {
    let data = blobs(20, 180, 7); // 3600 rows
    let opts = IvfOptions {
        nlist: 20,
        nprobe: 20,
        ..IvfOptions::default()
    };
    let ivf1 = qpp_par::with_threads(1, || {
        IvfIndex::build(data.clone(), DistanceMetric::Euclidean, opts).unwrap()
    });
    let ivf8 = qpp_par::with_threads(8, || {
        IvfIndex::build(data.clone(), DistanceMetric::Euclidean, opts).unwrap()
    });
    // The whole structure must agree bitwise: centroids, list layout.
    assert_eq!(ivf1.centroids(), ivf8.centroids());
    assert_eq!(ivf1.nlist(), ivf8.nlist());
    for c in 0..ivf1.nlist() {
        assert_eq!(ivf1.list(c), ivf8.list(c), "list {c} differs across pools");
    }
    // And so must every query, from either build, under either pool —
    // all equal to the serial brute scan.
    let nn = NearestNeighbors::new(data.clone(), DistanceMetric::Euclidean);
    let mut rng = StdRng::seed_from_u64(8);
    for q in 0..50 {
        let probe = [rng.random_range(0.0..70.0), rng.random_range(0.0..20.0)];
        let brute = qpp_par::with_threads(1, || nn.query(&probe, 7));
        let a1 = qpp_par::with_threads(1, || ivf1.query(&probe, 7));
        let a8 = qpp_par::with_threads(8, || ivf8.query(&probe, 7));
        assert_bitwise_equal(&brute, &a1, &format!("probe {q} (1 thread)"));
        assert_bitwise_equal(&brute, &a8, &format!("probe {q} (8 threads)"));
    }
}

#[test]
fn non_finite_reference_rows_are_skipped_like_brute() {
    let base = blobs(6, 80, 9);
    let mut rows = Vec::new(); // allow-vecvec: test fixture
    for i in 0..base.rows() {
        rows.push(base.row(i).to_vec());
        if i % 37 == 0 {
            rows.push(vec![f64::NAN, 0.0]);
        }
    }
    let data = Matrix::from_rows(&rows).unwrap();
    let nn = NearestNeighbors::new(data.clone(), DistanceMetric::Euclidean);
    let ivf = IvfIndex::build(
        data,
        DistanceMetric::Euclidean,
        IvfOptions {
            nlist: 8,
            nprobe: 8,
            ..IvfOptions::default()
        },
    )
    .unwrap();
    for probe in [[0.1, 0.2], [50.0, 10.0], [20.0, 0.0]] {
        let brute = qpp_par::with_threads(1, || nn.query(&probe, 5));
        let approx = ivf.query(&probe, 5);
        assert_bitwise_equal(&brute, &approx, "corrupt-reference probe");
        assert!(approx.iter().all(|n| n.distance.is_finite()));
    }
}

#[test]
fn fewer_finite_rows_than_k_yields_the_same_short_list() {
    let data = Matrix::from_rows(&[
        vec![0.0, 0.0],
        vec![f64::NAN, 1.0],
        vec![3.0, 4.0],
        vec![f64::INFINITY, f64::INFINITY],
        vec![1.0, 1.0],
    ])
    .unwrap();
    let nn = NearestNeighbors::new(data.clone(), DistanceMetric::Euclidean);
    let ivf = IvfIndex::build(
        data,
        DistanceMetric::Euclidean,
        IvfOptions {
            nlist: 2,
            nprobe: 2,
            ..IvfOptions::default()
        },
    )
    .unwrap();
    let brute = qpp_par::with_threads(1, || nn.query(&[0.0, 0.0], 10));
    let approx = ivf.query(&[0.0, 0.0], 10);
    assert_eq!(brute.len(), 3); // only the finite rows
    assert_bitwise_equal(&brute, &approx, "short-list probe");
}

#[test]
fn auto_switch_arms_agree_bitwise_across_the_threshold() {
    let data = blobs(16, 150, 11); // 2400 rows
    let brute_arm = AnnIndex::build(
        data.clone(),
        DistanceMetric::Euclidean,
        &AnnOptions {
            ivf_threshold: 10_000, // stay brute
            ..AnnOptions::default()
        },
    )
    .unwrap();
    let ivf_arm = AnnIndex::build(
        data,
        DistanceMetric::Euclidean,
        &AnnOptions {
            ivf_threshold: 100, // force IVF
            ivf: IvfOptions {
                nlist: 16,
                nprobe: 16,
                ..IvfOptions::default()
            },
        },
    )
    .unwrap();
    assert!(!brute_arm.is_ivf());
    assert!(ivf_arm.is_ivf());
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..50 {
        let probe = [rng.random_range(0.0..70.0), rng.random_range(0.0..20.0)];
        let brute = qpp_par::with_threads(1, || brute_arm.query(&probe, 3));
        let approx = ivf_arm.query(&probe, 3);
        assert_bitwise_equal(&brute, &approx, "auto-switch probe");
    }
}

#[test]
fn ivf_predictions_are_bitwise_equal_to_brute_predictions() {
    // The full predict tail: same neighbors in, same weights and axpy
    // combination out — shared code, so predictions must agree bitwise
    // for every weighting scheme.
    let data = blobs(12, 120, 13);
    let mut rng = StdRng::seed_from_u64(14);
    let targets = Matrix::from_fn(data.rows(), 6, |_, _| rng.random_range(0.0..100.0));
    let nn = NearestNeighbors::new(data.clone(), DistanceMetric::Euclidean);
    let ivf = IvfIndex::build(
        data.clone(),
        DistanceMetric::Euclidean,
        IvfOptions {
            nlist: 12,
            nprobe: 12,
            ..IvfOptions::default()
        },
    )
    .unwrap();
    for weighting in [
        NeighborWeighting::Equal,
        NeighborWeighting::RankRatio,
        NeighborWeighting::InverseDistance,
    ] {
        for i in (0..data.rows()).step_by(31) {
            let probe = data.row(i);
            let (bp, bn) = nn.predict(probe, &targets, 3, weighting).unwrap();
            let (ap, an) = ivf.predict(probe, &targets, 3, weighting).unwrap();
            assert_bitwise_equal(&bn, &an, "prediction neighbors");
            assert_eq!(bp.len(), ap.len());
            for (x, y) in bp.iter().zip(ap.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "prediction value differs");
            }
        }
    }
}
