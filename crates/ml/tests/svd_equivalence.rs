//! Equivalence of the two CCA eigensolvers, and determinism of the new
//! subspace-iteration path.
//!
//! The reduced path (`CcaMethod::ReducedSvd`: block-Cholesky reduction
//! plus truncated SVD by subspace iteration) must agree with the dense
//! reference (`CcaMethod::DenseGeneralized`: full Jacobi on the
//! `(p+q) x (p+q)` generalized problem) on random problems — the same
//! canonical correlations, and the same canonical directions up to the
//! per-path sign and normalization conventions. The reduced path must
//! additionally be bitwise identical at 1 and 8 threads.

use qpp_linalg::{svd, vector, Matrix, SvdOptions};
use qpp_ml::{Cca, CcaMethod, CcaOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Paired datasets with two latent variables so several canonical
/// directions are well-determined; `p != q` by construction.
fn latent_pair(n: usize, p: usize, q: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, p);
    let mut y = Matrix::zeros(n, q);
    for i in 0..n {
        let s: f64 = rng.random_range(-1.0..1.0);
        let t: f64 = rng.random_range(-1.0..1.0);
        for j in 0..p {
            let noise = 0.05 * rng.random_range(-1.0..1.0);
            x[(i, j)] = match j % 3 {
                0 => s + noise,
                1 => t - 0.5 * s + noise,
                _ => rng.random_range(-1.0..1.0),
            };
        }
        for j in 0..q {
            let noise = 0.05 * rng.random_range(-1.0..1.0);
            y[(i, j)] = match j % 3 {
                0 => 2.0 * s + noise,
                1 => -t + noise,
                _ => rng.random_range(-1.0..1.0),
            };
        }
    }
    (x, y)
}

fn fit(x: &Matrix, y: &Matrix, components: usize, method: CcaMethod) -> Cca {
    Cca::fit(
        x,
        y,
        CcaOptions {
            components,
            regularization: 1e-3,
            method,
        },
    )
    .expect("cca fit")
}

/// |cos| of the angle between two vectors (1 = same direction up to
/// sign).
fn abs_cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = vector::norm(a).max(1e-300);
    let nb = vector::norm(b).max(1e-300);
    (vector::dot(a, b) / (na * nb)).abs()
}

/// Asserts both paths produce matching correlations, and matching
/// projection directions for every well-separated component with
/// non-trivial correlation (degenerate / near-zero components have
/// ill-determined directions in exact arithmetic too).
fn assert_paths_equivalent(x: &Matrix, y: &Matrix, components: usize) {
    let reduced = fit(x, y, components, CcaMethod::ReducedSvd);
    let dense = fit(x, y, components, CcaMethod::DenseGeneralized);
    assert_eq!(reduced.components(), dense.components());
    for (k, (r, d)) in reduced
        .correlations
        .iter()
        .zip(dense.correlations.iter())
        .enumerate()
    {
        assert!(
            (r - d).abs() < 1e-6,
            "correlation {k}: reduced {r} vs dense {d}"
        );
    }
    // Compare canonical directions through the projections they induce
    // (projection columns are invariant to the weight parameterization
    // up to per-component sign and scale).
    let pr_x = reduced.project_x_matrix(x);
    let pd_x = dense.project_x_matrix(x);
    let pr_y = reduced.project_y_matrix(y);
    let pd_y = dense.project_y_matrix(y);
    for k in 0..reduced.components() {
        let rho = reduced.correlations[k];
        let gap_ok =
            k + 1 >= reduced.correlations.len() || (rho - reduced.correlations[k + 1]).abs() > 5e-2;
        let prev_gap_ok = k == 0 || (reduced.correlations[k - 1] - rho).abs() > 5e-2;
        if rho < 0.2 || !gap_ok || !prev_gap_ok {
            continue; // direction not identifiable; correlation already checked
        }
        let cx = abs_cosine(&pr_x.col(k), &pd_x.col(k));
        let cy = abs_cosine(&pr_y.col(k), &pd_y.col(k));
        assert!(cx > 1.0 - 1e-5, "x projection {k} diverges: |cos| = {cx}");
        assert!(cy > 1.0 - 1e-5, "y projection {k} diverges: |cos| = {cy}");
    }
}

#[test]
fn reduced_matches_dense_on_random_problems() {
    for seed in [3, 11, 29] {
        let (x, y) = latent_pair(250, 6, 4, seed);
        assert_paths_equivalent(&x, &y, 4);
    }
}

#[test]
fn reduced_matches_dense_when_p_less_than_q() {
    // Wide y side exercises the transpose branch of the truncated SVD.
    let (x, y) = latent_pair(220, 3, 7, 41);
    assert_paths_equivalent(&x, &y, 3);
}

#[test]
fn reduced_matches_dense_on_rank_deficient_input() {
    // Duplicate x columns: Cxx is singular before regularization, the
    // jittered Cholesky and the ridge must keep both paths in
    // agreement.
    let (x0, y) = latent_pair(200, 3, 4, 17);
    let mut x = Matrix::zeros(x0.rows(), 5);
    for i in 0..x0.rows() {
        for j in 0..3 {
            x[(i, j)] = x0[(i, j)];
        }
        x[(i, 3)] = x0[(i, 0)]; // exact duplicates
        x[(i, 4)] = x0[(i, 1)];
    }
    assert_paths_equivalent(&x, &y, 3);
}

#[test]
fn reduced_fit_is_bitwise_identical_across_thread_counts() {
    let (x, y) = latent_pair(300, 8, 5, 71);
    let opts = CcaOptions {
        components: 4,
        regularization: 1e-3,
        method: CcaMethod::ReducedSvd,
    };
    let serial = qpp_par::with_threads(1, || Cca::fit(&x, &y, opts).unwrap());
    let parallel = qpp_par::with_threads(8, || Cca::fit(&x, &y, opts).unwrap());
    assert_eq!(serial.correlations, parallel.correlations);
    let ps = qpp_par::with_threads(1, || serial.project_x_matrix(&x));
    let pp = qpp_par::with_threads(8, || parallel.project_x_matrix(&x));
    for i in 0..ps.rows() {
        for (a, b) in ps.row(i).iter().zip(pp.row(i).iter()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "projection bits differ at row {i}"
            );
        }
    }
}

#[test]
fn subspace_iteration_is_bitwise_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(5);
    let m = Matrix::from_fn(120, 80, |_, _| rng.random_range(-1.0..1.0));
    let serial = qpp_par::with_threads(1, || {
        svd::truncated_svd(&m, 12, SvdOptions::default()).unwrap()
    });
    let parallel = qpp_par::with_threads(8, || {
        svd::truncated_svd(&m, 12, SvdOptions::default()).unwrap()
    });
    assert_eq!(serial.iterations, parallel.iterations);
    for (a, b) in serial
        .singular_values
        .iter()
        .zip(parallel.singular_values.iter())
    {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(serial.u, parallel.u);
    assert_eq!(serial.v, parallel.v);
}

#[test]
fn truncated_svd_matches_dense_gram_spectrum_on_random_matrices() {
    for seed in [1, 9] {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::from_fn(60, 40, |_, _| rng.random_range(-1.0..1.0));
        let svd = svd::truncated_svd(&m, 6, SvdOptions::default()).unwrap();
        let eig = qpp_linalg::SymmetricEigen::new(&m.transpose().matmul(&m).unwrap()).unwrap();
        for (k, (s, l)) in svd
            .singular_values
            .iter()
            .zip(eig.values.iter())
            .enumerate()
        {
            let want = l.max(0.0).sqrt();
            assert!(
                (s - want).abs() < 1e-8 * want.max(1.0),
                "σ[{k}] = {s} vs dense {want}"
            );
        }
    }
}
