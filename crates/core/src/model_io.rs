//! Model serialization — the deployment flow of the paper's Fig. 1:
//! the vendor trains per-configuration models on calibration workloads
//! and *ships the models* to customer sites, where predictions run
//! without any training infrastructure.

use crate::predictor::KccaPredictor;
use crate::two_step::TwoStepPredictor;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// Format version written by this build. Bump on any incompatible
/// change to the serialized model layout.
///
/// v2: `KccaPredictor` stores an `AnnIndex` (brute/IVF enum) where v1
/// stored a bare `NearestNeighbors`, and `PredictorOptions` gained the
/// `ann` block.
pub const FORMAT_VERSION: u32 = 2;

/// Errors from model (de)serialization.
#[derive(Debug)]
pub enum ModelIoError {
    /// Filesystem error.
    Io(io::Error),
    /// JSON encoding/decoding error.
    Json(serde_json::Error),
    /// The file declares a format version this build cannot read.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The payload does not match its recorded checksum (corruption or
    /// truncation in transit).
    ChecksumMismatch {
        /// Checksum recorded in the envelope.
        recorded: String,
        /// Checksum computed from the payload actually read.
        computed: String,
    },
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "model io: {e}"),
            ModelIoError::Json(e) => write!(f, "model json: {e}"),
            ModelIoError::UnsupportedVersion { found, supported } => write!(
                f,
                "model format version {found} not supported (this build reads version {supported})"
            ),
            ModelIoError::ChecksumMismatch { recorded, computed } => write!(
                f,
                "model payload checksum mismatch: envelope records {recorded}, payload hashes to {computed}"
            ),
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<io::Error> for ModelIoError {
    fn from(e: io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

impl From<serde_json::Error> for ModelIoError {
    fn from(e: serde_json::Error) -> Self {
        ModelIoError::Json(e)
    }
}

/// The on-disk wrapper: version + payload checksum + the model JSON.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Envelope {
    /// Serialized-format version; see [`FORMAT_VERSION`].
    format_version: u32,
    /// `fnv1a64:<hex>` digest of the payload string's UTF-8 bytes.
    checksum: String,
    /// The model itself, as a nested JSON document.
    payload: String,
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn digest(payload: &str) -> String {
    format!("fnv1a64:{:016x}", fnv1a64(payload.as_bytes()))
}

/// Wraps serialized model JSON in the versioned, checksummed envelope.
fn seal(payload: String) -> Result<String, ModelIoError> {
    let envelope = Envelope {
        format_version: FORMAT_VERSION,
        checksum: digest(&payload),
        payload,
    };
    Ok(serde_json::to_string(&envelope)?)
}

/// Parses an envelope, verifying version then checksum, and returns the
/// inner payload.
fn open(json: &str) -> Result<String, ModelIoError> {
    let envelope: Envelope = serde_json::from_str(json)?;
    if envelope.format_version != FORMAT_VERSION {
        return Err(ModelIoError::UnsupportedVersion {
            found: envelope.format_version,
            supported: FORMAT_VERSION,
        });
    }
    let computed = digest(&envelope.payload);
    if computed != envelope.checksum {
        return Err(ModelIoError::ChecksumMismatch {
            recorded: envelope.checksum,
            computed,
        });
    }
    Ok(envelope.payload)
}

/// Serializes a one-model predictor to versioned, checksummed JSON.
pub fn to_json(model: &KccaPredictor) -> Result<String, ModelIoError> {
    seal(serde_json::to_string(model)?)
}

/// Deserializes a one-model predictor, verifying format version and
/// payload checksum first.
pub fn from_json(json: &str) -> Result<KccaPredictor, ModelIoError> {
    Ok(serde_json::from_str(&open(json)?)?)
}

/// Writes a one-model predictor to a file.
pub fn save(model: &KccaPredictor, path: impl AsRef<Path>) -> Result<(), ModelIoError> {
    fs::write(path, to_json(model)?)?;
    Ok(())
}

/// Loads a one-model predictor from a file.
pub fn load(path: impl AsRef<Path>) -> Result<KccaPredictor, ModelIoError> {
    from_json(&fs::read_to_string(path)?)
}

/// Serializes a two-step predictor to versioned, checksummed JSON.
pub fn two_step_to_json(model: &TwoStepPredictor) -> Result<String, ModelIoError> {
    seal(serde_json::to_string(model)?)
}

/// Deserializes a two-step predictor, verifying version and checksum.
pub fn two_step_from_json(json: &str) -> Result<TwoStepPredictor, ModelIoError> {
    Ok(serde_json::from_str(&open(json)?)?)
}

/// Writes a two-step predictor to a file.
pub fn save_two_step(model: &TwoStepPredictor, path: impl AsRef<Path>) -> Result<(), ModelIoError> {
    fs::write(path, two_step_to_json(model)?)?;
    Ok(())
}

/// Loads a two-step predictor from a file.
pub fn load_two_step(path: impl AsRef<Path>) -> Result<TwoStepPredictor, ModelIoError> {
    two_step_from_json(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::predictor::PredictorOptions;
    use qpp_engine::SystemConfig;
    use qpp_workload::{Schema, WorkloadGenerator};

    fn model() -> (KccaPredictor, Dataset) {
        let schema = Schema::tpcds(1.0);
        let mut g = WorkloadGenerator::tpcds(1.0, 61);
        let d = Dataset::collect(&schema, g.generate(60), &SystemConfig::neoview_4(), 2);
        (
            KccaPredictor::train(&d, PredictorOptions::default()).unwrap(),
            d,
        )
    }

    #[test]
    fn file_round_trip_preserves_predictions() {
        let (m, d) = model();
        let dir = std::env::temp_dir().join("qpp_model_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save(&m, &path).unwrap();
        let back = load(&path).unwrap();
        let r = &d.records[5];
        let a = m.predict(&r.spec, &r.optimized.plan).unwrap();
        let b = back.predict(&r.spec, &r.optimized.plan).unwrap();
        assert_eq!(a.metrics, b.metrics);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(matches!(
            load("/nonexistent/q/p/p/model.json"),
            Err(ModelIoError::Io(_))
        ));
    }

    #[test]
    fn corrupt_json_errors() {
        assert!(matches!(from_json("{not json"), Err(ModelIoError::Json(_))));
    }

    #[test]
    fn envelope_records_current_version() {
        let (m, _) = model();
        let json = to_json(&m).unwrap();
        assert!(json.contains("\"format_version\":2"));
        assert!(json.contains("fnv1a64:"));
    }

    #[test]
    fn future_version_rejected_with_typed_error() {
        let (m, _) = model();
        let json = to_json(&m).unwrap();
        let bumped = json.replace("\"format_version\":2", "\"format_version\":99");
        match from_json(&bumped) {
            Err(ModelIoError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, 99);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let (m, _) = model();
        let json = to_json(&m).unwrap();
        // Flip one digit inside the payload without breaking JSON syntax.
        let idx = json.find("\"payload\"").unwrap();
        let corrupt_at = json[idx..]
            .char_indices()
            .find(|(_, c)| c.is_ascii_digit())
            .map(|(i, _)| idx + i)
            .unwrap();
        let mut bytes = json.into_bytes();
        bytes[corrupt_at] = if bytes[corrupt_at] == b'9' {
            b'8'
        } else {
            b'9'
        };
        let corrupted = String::from_utf8(bytes).unwrap();
        assert!(matches!(
            from_json(&corrupted),
            Err(ModelIoError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn two_step_round_trips_through_envelope() {
        let (_, d) = model();
        let two = TwoStepPredictor::train(&d, PredictorOptions::default()).unwrap();
        let json = two_step_to_json(&two).unwrap();
        let back = two_step_from_json(&json).unwrap();
        let r = &d.records[2];
        let a = two.predict(&r.spec, &r.optimized.plan).unwrap();
        let b = back.predict(&r.spec, &r.optimized.plan).unwrap();
        assert_eq!(a.metrics, b.metrics);
    }
}
