//! Model serialization — the deployment flow of the paper's Fig. 1:
//! the vendor trains per-configuration models on calibration workloads
//! and *ships the models* to customer sites, where predictions run
//! without any training infrastructure.

use crate::predictor::KccaPredictor;
use crate::two_step::TwoStepPredictor;
use std::fs;
use std::io;
use std::path::Path;

/// Errors from model (de)serialization.
#[derive(Debug)]
pub enum ModelIoError {
    /// Filesystem error.
    Io(io::Error),
    /// JSON encoding/decoding error.
    Json(serde_json::Error),
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "model io: {e}"),
            ModelIoError::Json(e) => write!(f, "model json: {e}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<io::Error> for ModelIoError {
    fn from(e: io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

impl From<serde_json::Error> for ModelIoError {
    fn from(e: serde_json::Error) -> Self {
        ModelIoError::Json(e)
    }
}

/// Serializes a one-model predictor to JSON.
pub fn to_json(model: &KccaPredictor) -> Result<String, ModelIoError> {
    Ok(serde_json::to_string(model)?)
}

/// Deserializes a one-model predictor from JSON.
pub fn from_json(json: &str) -> Result<KccaPredictor, ModelIoError> {
    Ok(serde_json::from_str(json)?)
}

/// Writes a one-model predictor to a file.
pub fn save(model: &KccaPredictor, path: impl AsRef<Path>) -> Result<(), ModelIoError> {
    fs::write(path, to_json(model)?)?;
    Ok(())
}

/// Loads a one-model predictor from a file.
pub fn load(path: impl AsRef<Path>) -> Result<KccaPredictor, ModelIoError> {
    from_json(&fs::read_to_string(path)?)
}

/// Writes a two-step predictor to a file.
pub fn save_two_step(model: &TwoStepPredictor, path: impl AsRef<Path>) -> Result<(), ModelIoError> {
    fs::write(path, serde_json::to_string(model)?)?;
    Ok(())
}

/// Loads a two-step predictor from a file.
pub fn load_two_step(path: impl AsRef<Path>) -> Result<TwoStepPredictor, ModelIoError> {
    Ok(serde_json::from_str(&fs::read_to_string(path)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::predictor::PredictorOptions;
    use qpp_engine::SystemConfig;
    use qpp_workload::{Schema, WorkloadGenerator};

    fn model() -> (KccaPredictor, Dataset) {
        let schema = Schema::tpcds(1.0);
        let mut g = WorkloadGenerator::tpcds(1.0, 61);
        let d = Dataset::collect(&schema, g.generate(60), &SystemConfig::neoview_4(), 2);
        (
            KccaPredictor::train(&d, PredictorOptions::default()).unwrap(),
            d,
        )
    }

    #[test]
    fn file_round_trip_preserves_predictions() {
        let (m, d) = model();
        let dir = std::env::temp_dir().join("qpp_model_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save(&m, &path).unwrap();
        let back = load(&path).unwrap();
        let r = &d.records[5];
        let a = m.predict(&r.spec, &r.optimized.plan).unwrap();
        let b = back.predict(&r.spec, &r.optimized.plan).unwrap();
        assert_eq!(a.metrics, b.metrics);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(matches!(
            load("/nonexistent/q/p/p/model.json"),
            Err(ModelIoError::Io(_))
        ));
    }

    #[test]
    fn corrupt_json_errors() {
        assert!(matches!(from_json("{not json"), Err(ModelIoError::Json(_))));
    }
}
