//! Query performance prediction with KCCA — the system of
//! *Predicting Multiple Metrics for Queries* (ICDE 2009).
//!
//! Given only compile-time information (the optimizer's query plan),
//! predict all six performance metrics of a query — elapsed time, disk
//! I/Os, message count, message bytes, records accessed, records used —
//! by projecting its plan-feature vector into a KCCA-correlated space
//! and averaging the measured metrics of its nearest training
//! neighbors.
//!
//! The crate provides:
//!
//! * [`features`] — the paper's two candidate query feature vectors
//!   (query-plan, Fig. 9; SQL-text, §VI-D.1) and the performance vector;
//! * [`dataset`] — running workloads through the simulated engine to
//!   collect `(plan, metrics)` training records, in parallel;
//! * [`categories`] — feather / golf-ball / bowling-ball query classes
//!   and pool construction (Fig. 2);
//! * [`predictor`] — the one-model KCCA predictor (train → project →
//!   k-NN → average; Figs. 5 and 7) with prediction confidence;
//! * [`two_step`] — the two-step variant with per-category models
//!   (Experiment 3);
//! * [`baselines`] — linear regression (Figs. 3–4), the optimizer-cost
//!   line of best fit (Fig. 17), and a PQR-style runtime-range tree
//!   (related work, §III);
//! * [`feature_importance`] — which plan features the model keys on
//!   (§VII-C.2);
//! * [`workload_mgmt`], [`sizing`] — the decisions the paper motivates:
//!   admission control, kill timeouts, system sizing, capacity
//!   planning;
//! * [`model_io`] — serialize trained models (the "vendor ships models
//!   to customers" flow of Fig. 1);
//! * [`retrain`] — sliding-window retraining (the paper's future-work
//!   §VII-C.4).
//!
//! All public fallible APIs return [`error::QppError`], the unified
//! error of the predict path; see [`error`] for the hierarchy.

// The predict path must degrade into typed errors, never panics.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod baselines;
pub mod categories;
pub mod dataset;
pub mod error;
pub mod feature_importance;
pub mod features;
pub mod model_io;
pub mod pipeline;
pub mod predictor;
pub mod retrain;
pub mod sizing;
pub mod two_step;
pub mod workload_mgmt;

pub use categories::QueryCategory;
pub use dataset::{Dataset, QueryRecord};
pub use error::{QppError, QppResult, ResultExt};
pub use features::{FeatureKind, PlanFeatures};
pub use predictor::{KccaPredictor, NeighborIds, Prediction, PredictorOptions};
pub use two_step::TwoStepPredictor;
