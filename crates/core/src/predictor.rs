//! The one-model KCCA predictor (paper §VI, Figs. 5 and 7).
//!
//! Training: extract query-feature and performance-feature vectors for
//! every executed training query, fit KCCA, and keep the training
//! points' coordinates in the query projection alongside their *raw*
//! measured metrics.
//!
//! Prediction: project the new query's feature vector into the query
//! projection, find its k nearest training neighbors there, and
//! average their measured performance vectors (the paper's resolution
//! of the pre-image problem, §VI-E.3). The mean neighbor distance
//! doubles as a confidence signal (§VII-C.3).

use crate::dataset::Dataset;
use crate::error::{QppError, ResultExt};
use crate::features::{feature_dim, query_features, query_features_to, FeatureKind};
use qpp_engine::{PerfMetrics, Plan};
use qpp_linalg::{stats::Standardizer, vector, Matrix, MatrixView};
use qpp_ml::{
    AnnIndex, AnnOptions, DistanceMetric, Kcca, KccaOptions, KnnScratch, NeighborWeighting,
    ProjectionScratch,
};
use qpp_workload::QuerySpec;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::ops::Deref;

/// Tunable knobs of the predictor; defaults are the paper's choices.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PredictorOptions {
    /// Which query feature vector to use (paper: query plan).
    pub feature_kind: FeatureKind,
    /// KCCA hyperparameters.
    pub kcca: KccaOptions,
    /// Neighbors consulted per prediction (paper: 3, Table II).
    pub neighbors: usize,
    /// Distance metric in projection space (paper: Euclidean, Table I).
    pub metric: DistanceMetric,
    /// Neighbor weighting (paper: equal, Table III).
    pub weighting: NeighborWeighting,
    /// Combine neighbor metrics geometrically (in `ln(1+x)` space)
    /// instead of arithmetically. The paper averages raw metrics
    /// (§VI-E.3); geometric combination is our extension — it is the
    /// natural mean for metrics spanning orders of magnitude and
    /// measurably tightens the relative-error tail (see the `ablation`
    /// bench).
    pub log_space_average: bool,
    /// Neighbor-index selection: brute scan at paper scale, a
    /// deterministic IVF index once the reference outgrows
    /// `ann.ivf_threshold` rows (DESIGN.md §17).
    pub ann: AnnOptions,
}

impl Default for PredictorOptions {
    fn default() -> Self {
        PredictorOptions {
            feature_kind: FeatureKind::QueryPlan,
            kcca: KccaOptions::default(),
            neighbors: 3,
            metric: DistanceMetric::Euclidean,
            weighting: NeighborWeighting::Equal,
            log_space_average: false,
            ann: AnnOptions::default(),
        }
    }
}

/// Neighbor indices stored inline: up to [`NeighborIds::INLINE`]
/// entries live in the struct itself (covering every practical k — the
/// paper evaluates 3..7), so building a [`Prediction`] performs no heap
/// allocation. Larger k spills to a `Vec`. Dereferences to `&[usize]`.
#[derive(Debug, Clone, Default)]
pub struct NeighborIds {
    len: usize,
    inline: [usize; Self::INLINE],
    spill: Vec<usize>,
}

impl NeighborIds {
    /// Indices held without heap allocation.
    pub const INLINE: usize = 8;

    /// An empty list (no allocation).
    pub fn new() -> Self {
        NeighborIds::default()
    }

    /// Appends an index, spilling to the heap past [`NeighborIds::INLINE`].
    pub fn push(&mut self, index: usize) {
        if self.spill.is_empty() && self.len < Self::INLINE {
            self.inline[self.len] = index;
        } else {
            if self.spill.is_empty() {
                self.spill.reserve(self.len + 1);
                self.spill.extend_from_slice(&self.inline[..self.len]);
            }
            self.spill.push(index);
        }
        self.len += 1;
    }

    /// The indices as a slice.
    pub fn as_slice(&self) -> &[usize] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }
}

impl Deref for NeighborIds {
    type Target = [usize];

    fn deref(&self) -> &[usize] {
        self.as_slice()
    }
}

impl PartialEq for NeighborIds {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for NeighborIds {}

impl FromIterator<usize> for NeighborIds {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut out = NeighborIds::new();
        for index in iter {
            out.push(index);
        }
        out
    }
}

impl<'a> IntoIterator for &'a NeighborIds {
    type Item = &'a usize;
    type IntoIter = std::slice::Iter<'a, usize>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl Serialize for NeighborIds {
    fn to_value(&self) -> serde::value::Value {
        self.as_slice().to_vec().to_value()
    }
}

impl Deserialize for NeighborIds {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::DeError> {
        Ok(Vec::<usize>::from_value(v)?.into_iter().collect())
    }
}

/// A prediction for one query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted values for all six metrics.
    pub metrics: PerfMetrics,
    /// Training-record indices of the neighbors used.
    pub neighbor_indices: NeighborIds,
    /// Mean distance to the neighbors in the query projection; small
    /// means the model has seen similar queries (high confidence),
    /// large flags a potentially anomalous query (§VII-C.3).
    pub confidence_distance: f64,
    /// Largest kernel similarity between the query and any training
    /// pivot, in `(0, 1]`. Near-zero means the query's kernel row
    /// vanished — it is unlike everything in the training set, and the
    /// projection (hence `confidence_distance`) is untrustworthy.
    pub max_kernel_similarity: f64,
}

impl Prediction {
    /// True when the prediction should not be trusted: either the
    /// nearest training neighbors are far away in projection space, or
    /// the query fell outside the kernel's support entirely.
    pub fn is_anomalous(&self, distance_threshold: f64, similarity_floor: f64) -> bool {
        self.confidence_distance > distance_threshold
            || self.max_kernel_similarity < similarity_floor
    }
}

/// A trained one-model KCCA predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KccaPredictor {
    options: PredictorOptions,
    scaler: Standardizer,
    kcca: Kcca,
    index: AnnIndex,
    /// Raw measured metrics of training queries (row-aligned with the
    /// query projection).
    raw_performance: Matrix,
    /// `ln(1+x)` metrics for geometric combination.
    log_performance: Matrix,
}

/// Per-thread reusable buffers for the single-query predict path. One
/// instance per worker thread (thread-local), so concurrent serving
/// threads never contend, and a warmed-up thread performs zero heap
/// allocations per [`KccaPredictor::predict_features`] call.
#[derive(Debug, Default)]
struct PredictScratch {
    scaled: Vec<f64>,
    projection: ProjectionScratch,
    projected: Vec<f64>,
    knn: KnnScratch,
    combined: Vec<f64>,
}

thread_local! {
    static SCRATCH: RefCell<PredictScratch> = RefCell::new(PredictScratch::default());
}

impl KccaPredictor {
    /// Trains on every record of `dataset`.
    ///
    /// Each pipeline stage records a `qpp_obs` span (standardize,
    /// kernel fit, ICD, eigensolve, kNN build), so
    /// `qpp_obs::recorder().stage_summary()` gives a per-stage training
    /// breakdown. All wall-clock reads live inside qpp-obs; this crate
    /// stays free of `Instant` per the `no-wallclock-in-model` lint.
    pub fn train(dataset: &Dataset, options: PredictorOptions) -> Result<Self, QppError> {
        let mut total = qpp_obs::span(qpp_obs::Stage::TrainTotal);
        total.set_value(dataset.records.len() as u64);
        let x_raw = dataset.feature_matrix(options.feature_kind);
        let (scaler, x) = {
            let _s = qpp_obs::span(qpp_obs::Stage::TrainStandardize);
            let scaler = Standardizer::fit(&x_raw);
            let x = scaler.transform(&x_raw);
            (scaler, x)
        };
        let y = dataset.kernel_performance_matrix();
        let kcca = Kcca::fit(x.view(), y.view(), options.kcca).ctx("fitting kcca")?;
        let index = {
            let _s = qpp_obs::span(qpp_obs::Stage::TrainKnnBuild);
            AnnIndex::build(
                kcca.query_projection().clone(),
                options.metric,
                &options.ann,
            )
            .ctx("building the neighbor index")?
        };
        Ok(KccaPredictor {
            options,
            scaler,
            kcca,
            index,
            raw_performance: dataset.performance_matrix(),
            log_performance: y,
        })
    }

    /// The options the model was trained with.
    pub fn options(&self) -> &PredictorOptions {
        &self.options
    }

    /// Number of training queries.
    pub fn training_size(&self) -> usize {
        self.raw_performance.rows()
    }

    /// Canonical correlations achieved during training.
    pub fn correlations(&self) -> &[f64] {
        self.kcca.correlations()
    }

    /// The underlying KCCA model.
    pub fn kcca(&self) -> &Kcca {
        &self.kcca
    }

    /// The neighbor index the model predicts through — brute scan or
    /// IVF, depending on the training-set size vs
    /// `options.ann.ivf_threshold`.
    pub fn index(&self) -> &AnnIndex {
        &self.index
    }

    /// Predicts from a raw query feature vector.
    ///
    /// The steady-state hot path: standardization, kernel row, ICD
    /// embedding, CCA projection and kNN combine all write into
    /// thread-local scratch buffers, so once a thread's buffers have
    /// warmed up to the model's dimensions this performs **zero heap
    /// allocations** (guarded by the `alloc_regression` test).
    // qpp-lint: hot-path
    pub fn predict_features(&self, features: &[f64]) -> Result<Prediction, QppError> {
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            {
                let _s = qpp_obs::span(qpp_obs::Stage::PredictStandardize);
                self.scaler
                    .transform_row_into(features, &mut scratch.scaled);
            }
            let max_kernel_similarity = {
                let _s = qpp_obs::span(qpp_obs::Stage::PredictProject);
                self.kcca.project_query_into(
                    &scratch.scaled,
                    &mut scratch.projection,
                    &mut scratch.projected,
                )
            }
            .ctx("projecting query features")?;
            self.finish_prediction_with(
                &scratch.projected,
                &mut scratch.knn,
                &mut scratch.combined,
                max_kernel_similarity,
            )
        })
    }

    /// Predicts a batch of raw query feature vectors (one per row) in
    /// one pass.
    ///
    /// Entry `i` is bitwise identical to
    /// `self.predict_features(rows.row(i))`: both paths execute the same
    /// per-row floating-point operations in the same order, the batch
    /// path merely shares one contiguous scaled matrix and amortizes
    /// scratch buffers across queries (see
    /// `Kcca::project_queries_with_similarity`).
    pub fn predict_features_batch(
        &self,
        rows: MatrixView<'_>,
    ) -> Result<Vec<Prediction>, QppError> {
        let mut batch_span = qpp_obs::span(qpp_obs::Stage::PredictBatch);
        batch_span.set_value(rows.rows() as u64);
        let mut scaled = Matrix::zeros(rows.rows(), rows.cols());
        for i in 0..rows.rows() {
            self.scaler.transform_row_to(rows.row(i), scaled.row_mut(i));
        }
        let projections = self
            .kcca
            .project_queries_with_similarity(scaled.view())
            .ctx("projecting query batch")?;
        let mut knn = KnnScratch::new();
        let mut combined = Vec::new();
        projections
            .into_iter()
            .map(|(projected, similarity)| {
                self.finish_prediction_with(&projected, &mut knn, &mut combined, similarity)
            })
            .collect()
    }

    /// Shared tail of single and batched prediction: kNN combine in
    /// projection space plus the confidence signals, through caller-
    /// provided scratch buffers.
    ///
    /// Fails (instead of silently predicting zeros, as it once did)
    /// when no usable neighbor exists — an empty reference or a probe
    /// whose projection is entirely non-finite.
    // qpp-lint: hot-path
    fn finish_prediction_with(
        &self,
        projected: &[f64],
        knn: &mut KnnScratch,
        combined: &mut Vec<f64>,
        max_kernel_similarity: f64,
    ) -> Result<Prediction, QppError> {
        let targets = if self.options.log_space_average {
            &self.log_performance
        } else {
            &self.raw_performance
        };
        let mut knn_span = qpp_obs::span(qpp_obs::Stage::PredictKnn);
        knn_span.set_value(self.options.neighbors as u64);
        self.index
            .predict_into(
                projected,
                targets,
                self.options.neighbors,
                self.options.weighting,
                knn,
                combined,
            )
            .ctx("combining neighbor metrics")?;
        if self.options.log_space_average {
            for v in combined.iter_mut() {
                *v = v.exp_m1().max(0.0);
            }
        }
        drop(knn_span);
        // `predict_into` never leaves an empty neighbor list on success.
        let found = &knn.neighbors;
        let confidence_distance =
            vector::sum_iter(found.iter().map(|n| n.distance)) / found.len() as f64;
        Ok(Prediction {
            metrics: PerfMetrics::from_vec(combined),
            // NeighborIds stores up to `INLINE` indices without heap;
            // k ≤ 8 in every supported configuration.
            // qpp-lint: allow(no-alloc-hot-path)
            neighbor_indices: found.iter().map(|n| n.index).collect(),
            confidence_distance,
            max_kernel_similarity,
        })
    }

    /// Predicts for a query given its optimizer plan — the compile-time
    /// entry point (no execution required).
    pub fn predict(&self, spec: &QuerySpec, plan: &Plan) -> Result<Prediction, QppError> {
        let features = query_features(self.options.feature_kind, spec, plan);
        self.predict_features(&features)
    }

    /// Predicts a batch of queries in one pass (micro-batched serving
    /// and the experiment hot loops). Results are bitwise identical to
    /// per-query [`KccaPredictor::predict`] calls in the same order.
    pub fn predict_batch(
        &self,
        queries: &[(&QuerySpec, &Plan)],
    ) -> Result<Vec<Prediction>, QppError> {
        let mut features = Matrix::zeros(queries.len(), feature_dim(self.options.feature_kind));
        for (i, (spec, plan)) in queries.iter().enumerate() {
            query_features_to(self.options.feature_kind, spec, plan, features.row_mut(i));
        }
        self.predict_features_batch(features.view())
    }

    /// Predicts every record of a dataset (e.g. a held-out test set)
    /// through the batched path.
    pub fn predict_dataset(&self, dataset: &Dataset) -> Result<Vec<Prediction>, QppError> {
        let queries: Vec<(&QuerySpec, &Plan)> = dataset
            .records
            .iter()
            .map(|r| (&r.spec, &r.optimized.plan))
            .collect();
        self.predict_batch(&queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use qpp_engine::SystemConfig;
    use qpp_ml::{fraction_within, predictive_risk};
    use qpp_workload::{Schema, WorkloadGenerator};

    fn dataset(n: usize, seed: u64) -> Dataset {
        let schema = Schema::tpcds(1.0);
        let mut g = WorkloadGenerator::tpcds(1.0, seed);
        Dataset::collect(&schema, g.generate(n), &SystemConfig::neoview_4(), 2)
    }

    #[test]
    fn train_and_predict_round_trip() {
        let train = dataset(120, 1);
        let test = dataset(30, 2);
        let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
        assert_eq!(model.training_size(), 120);
        assert!(model.correlations()[0] > 0.5);
        let preds = model.predict_dataset(&test).unwrap();
        assert_eq!(preds.len(), 30);
        for p in &preds {
            assert!(p.metrics.is_valid());
            assert_eq!(p.neighbor_indices.len(), 3);
            assert!(p.confidence_distance.is_finite());
        }
    }

    #[test]
    fn elapsed_prediction_beats_mean_baseline() {
        let train = dataset(250, 3);
        let test = dataset(60, 4);
        let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
        let preds = model.predict_dataset(&test).unwrap();
        let predicted: Vec<f64> = preds.iter().map(|p| p.metrics.elapsed_seconds).collect();
        let actual = test.elapsed();
        let risk = predictive_risk(&predicted, &actual);
        assert!(risk > 0.0, "predictive risk {risk} not better than mean");
        // A loose version of the paper's headline: most predictions land
        // within 2x on this small training set.
        let within_2x = fraction_within(&predicted, &actual, 1.0);
        assert!(within_2x > 0.5, "only {within_2x} within 2x");
    }

    #[test]
    fn training_point_predicts_itself() {
        let train = dataset(100, 5);
        let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
        // A training query's nearest neighbor is itself (distance ~0), so
        // the prediction is dominated by its own measured metrics.
        let r = &train.records[10];
        let p = model.predict(&r.spec, &r.optimized.plan).unwrap();
        assert!(p.neighbor_indices.contains(&10));
    }

    #[test]
    fn sql_features_are_supported() {
        let train = dataset(80, 7);
        let opts = PredictorOptions {
            feature_kind: FeatureKind::SqlText,
            ..PredictorOptions::default()
        };
        let model = KccaPredictor::train(&train, opts).unwrap();
        let p = model
            .predict(&train.records[0].spec, &train.records[0].optimized.plan)
            .unwrap();
        assert!(p.metrics.is_valid());
    }

    #[test]
    fn confidence_flags_out_of_distribution_queries() {
        let train = dataset(150, 9);
        let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
        // In-distribution: a training record.
        let r = &train.records[0];
        let p_in = model.predict(&r.spec, &r.optimized.plan).unwrap();
        // Out of distribution: absurd feature vector. Its kernel row
        // vanishes, so the similarity signal (not the distance) is what
        // flags it.
        let dim = crate::features::PlanFeatures::DIM;
        let weird = vec![500.0; dim];
        let p_out = model.predict_features(&weird).unwrap();
        assert!(
            p_out.max_kernel_similarity < p_in.max_kernel_similarity * 0.1,
            "ood similarity {} vs in {}",
            p_out.max_kernel_similarity,
            p_in.max_kernel_similarity
        );
        assert!(p_out.is_anomalous(f64::INFINITY, 1e-3));
        assert!(!p_in.is_anomalous(f64::INFINITY, 1e-3));
    }

    #[test]
    fn batch_prediction_bitwise_matches_single() {
        let train = dataset(120, 13);
        let test = dataset(40, 14);
        for log_space_average in [false, true] {
            let opts = PredictorOptions {
                log_space_average,
                ..PredictorOptions::default()
            };
            let model = KccaPredictor::train(&train, opts).unwrap();
            let singles: Vec<Prediction> = test
                .records
                .iter()
                .map(|r| model.predict(&r.spec, &r.optimized.plan).unwrap())
                .collect();
            let queries: Vec<_> = test
                .records
                .iter()
                .map(|r| (&r.spec, &r.optimized.plan))
                .collect();
            let batched = model.predict_batch(&queries).unwrap();
            assert_eq!(singles.len(), batched.len());
            for (s, b) in singles.iter().zip(batched.iter()) {
                // Bitwise, not approximate: the batched path must run
                // the identical FP operations in the identical order.
                for (x, y) in s.metrics.to_vec().iter().zip(b.metrics.to_vec().iter()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
                assert_eq!(s.neighbor_indices, b.neighbor_indices);
                assert_eq!(
                    s.confidence_distance.to_bits(),
                    b.confidence_distance.to_bits()
                );
                assert_eq!(
                    s.max_kernel_similarity.to_bits(),
                    b.max_kernel_similarity.to_bits()
                );
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let train = dataset(60, 11);
        let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: KccaPredictor = serde_json::from_str(&json).unwrap();
        let r = &train.records[3];
        let a = model.predict(&r.spec, &r.optimized.plan).unwrap();
        let b = back.predict(&r.spec, &r.optimized.plan).unwrap();
        assert_eq!(a.metrics, b.metrics);
    }
}
