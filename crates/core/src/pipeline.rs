//! End-to-end conveniences: generate → execute → train → evaluate.

use crate::dataset::Dataset;
use crate::error::QppError;
use crate::predictor::{KccaPredictor, Prediction, PredictorOptions};
use qpp_engine::{PerfMetrics, SystemConfig};
use qpp_linalg::vector;
use qpp_ml::{fraction_within, predictive_risk};
use qpp_workload::WorkloadGenerator;
use serde::{Deserialize, Serialize};

/// Per-metric evaluation of a predictor on a test dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Evaluation {
    /// Predictive risk per metric, canonical order; `None` when the
    /// metric was constant in the test set (e.g. disk I/O ≡ 0 — the
    /// paper reports these cells as "Null", Fig. 16).
    pub predictive_risk: Vec<Option<f64>>,
    /// Fraction of elapsed-time predictions within 20% of actual (the
    /// paper's headline statistic).
    pub elapsed_within_20pct: f64,
    /// Fraction within 2x, a coarser sanity band.
    pub elapsed_within_2x: f64,
}

/// Evaluates predictions against a test dataset.
pub fn evaluate(predictions: &[Prediction], test: &Dataset) -> Evaluation {
    assert_eq!(
        predictions.len(),
        test.len(),
        "prediction/test size mismatch"
    );
    let actual = test.performance_matrix();
    let mut risks = Vec::with_capacity(PerfMetrics::DIM);
    for m in 0..PerfMetrics::DIM {
        let a: Vec<f64> = actual.col(m);
        let p: Vec<f64> = predictions
            .iter()
            .map(|pr| pr.metrics.to_vec()[m])
            .collect();
        let mean = vector::sum(&a) / a.len().max(1) as f64;
        let variance = vector::sum_iter(a.iter().map(|v| (v - mean) * (v - mean)));
        if variance <= 1e-12 {
            risks.push(None); // the paper's "Null" cells
        } else {
            risks.push(Some(predictive_risk(&p, &a)));
        }
    }
    let pred_elapsed: Vec<f64> = predictions
        .iter()
        .map(|p| p.metrics.elapsed_seconds)
        .collect();
    let actual_elapsed = test.elapsed();
    Evaluation {
        predictive_risk: risks,
        elapsed_within_20pct: fraction_within(&pred_elapsed, &actual_elapsed, 0.2),
        elapsed_within_2x: fraction_within(&pred_elapsed, &actual_elapsed, 1.0),
    }
}

/// Generates a workload of `n` TPC-DS queries, runs it on `config`, and
/// returns the dataset. `threads` bounds the parallel executor workers.
pub fn collect_tpcds(n: usize, seed: u64, config: &SystemConfig, threads: usize) -> Dataset {
    let mut generator = WorkloadGenerator::tpcds(1.0, seed);
    let queries = generator.generate(n);
    let schema = generator.schema().clone();
    Dataset::collect(&schema, queries, config, threads)
}

/// Trains on one dataset and evaluates on another; the everything
/// helper used by examples and experiments.
pub fn train_and_evaluate(
    train: &Dataset,
    test: &Dataset,
    options: PredictorOptions,
) -> Result<(KccaPredictor, Evaluation), QppError> {
    let model = KccaPredictor::train(train, options)?;
    let predictions = model.predict_dataset(test)?;
    Ok((model, evaluate(&predictions, test)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::NeighborIds;

    #[test]
    fn end_to_end_pipeline_runs() {
        let cfg = SystemConfig::neoview_4();
        let train = collect_tpcds(150, 101, &cfg, 2);
        let test = collect_tpcds(40, 102, &cfg, 2);
        let (model, eval) = train_and_evaluate(&train, &test, PredictorOptions::default()).unwrap();
        assert_eq!(model.training_size(), 150);
        assert_eq!(eval.predictive_risk.len(), PerfMetrics::DIM);
        // Records used is strongly determined by the plan: risk present
        // and positive even on a small training set.
        let used_risk = eval.predictive_risk[5];
        assert!(used_risk.is_some());
        assert!(eval.elapsed_within_2x > 0.3);
    }

    #[test]
    fn evaluate_marks_constant_metrics_null() {
        let cfg = SystemConfig::neoview_4();
        let test = collect_tpcds(20, 103, &cfg, 2);
        // All-zero predictions against possibly constant disk I/O.
        let preds: Vec<Prediction> = test
            .records
            .iter()
            .map(|r| Prediction {
                metrics: r.metrics,
                neighbor_indices: NeighborIds::new(),
                confidence_distance: 0.0,
                max_kernel_similarity: 1.0,
            })
            .collect();
        let eval = evaluate(&preds, &test);
        // Perfect self-prediction: every non-null risk is 1.
        for r in eval.predictive_risk.iter().flatten() {
            assert!((r - 1.0).abs() < 1e-9);
        }
        assert!((eval.elapsed_within_20pct - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn evaluate_checks_lengths() {
        let cfg = SystemConfig::neoview_4();
        let test = collect_tpcds(5, 104, &cfg, 1);
        evaluate(&[], &test);
    }
}
