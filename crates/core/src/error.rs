//! The unified error hierarchy of the predict path.
//!
//! Every layer of the data plane keeps its own narrow error type —
//! [`LinalgError`] for numerics, [`KnnError`] for neighbor search,
//! [`ModelIoError`](crate::model_io::ModelIoError) for model
//! (de)serialization — and [`QppError`] is the single type they all
//! converge to at the public API boundary. Embedders match on one enum;
//! layers keep errors precise; `?` works across crate boundaries via
//! the `From` conversions below.
//!
//! Call sites that want to say *where* a failure happened attach a
//! static context string with [`ResultExt::ctx`]:
//!
//! ```
//! use qpp_core::error::{QppError, ResultExt};
//! # use qpp_linalg::LinalgError;
//! fn project() -> Result<(), QppError> {
//!     let r: Result<(), LinalgError> = Err(LinalgError::Empty("demo"));
//!     r.ctx("projecting query features")
//! }
//! assert!(project().unwrap_err().to_string().contains("projecting"));
//! ```
//!
//! `QppError` is `Clone` (serving fans one failure out to every request
//! in a micro-batch), which is why the `ModelIo` variant wraps its
//! source in an `Arc`: `std::io::Error` is not `Clone`.

use crate::model_io::ModelIoError;
use qpp_linalg::LinalgError;
use qpp_ml::KnnError;
use std::fmt;
use std::sync::Arc;

/// Workspace-level error for the train/predict/serve path.
#[derive(Debug, Clone)]
pub enum QppError {
    /// A linear-algebra failure (shape mismatch, non-convergence, …).
    Linalg {
        /// What the caller was doing, or `""` when converted via `?`.
        context: &'static str,
        /// The underlying numerics error.
        source: LinalgError,
    },
    /// A nearest-neighbor failure (empty reference, no finite
    /// neighbors, misaligned targets).
    Knn {
        /// What the caller was doing, or `""` when converted via `?`.
        context: &'static str,
        /// The underlying neighbor-search error.
        source: KnnError,
    },
    /// A model (de)serialization failure.
    ModelIo {
        /// What the caller was doing, or `""` when converted via `?`.
        context: &'static str,
        /// The underlying model-io error (`Arc` because `io::Error` is
        /// not `Clone` and serving clones errors across a micro-batch).
        source: Arc<ModelIoError>,
    },
    /// The serving queue was full; the request was shed (capacity is
    /// the queue's configured limit).
    QueueFull {
        /// Configured queue capacity.
        capacity: usize,
    },
    /// A tenant exceeded its admission quota: the request was shed
    /// before touching any queue shard, so one tenant flooding the
    /// gateway cannot displace another tenant's traffic.
    TenantQuotaExceeded {
        /// Numeric tenant ID whose quota was exhausted.
        tenant: u32,
        /// The tenant's configured quota (max queued requests).
        quota: usize,
    },
    /// The serving queue is draining for shutdown; no new requests.
    ShuttingDown,
    /// No model is registered under the requested key.
    UnknownModel {
        /// The key that failed to resolve.
        key: String,
    },
}

/// Convenience alias for the predict path.
pub type QppResult<T> = Result<T, QppError>;

impl QppError {
    /// Attaches (or replaces) the context of a layered variant; no-op
    /// for the serving variants, whose meaning is already complete.
    pub fn with_context(mut self, context: &'static str) -> Self {
        match &mut self {
            QppError::Linalg { context: c, .. }
            | QppError::Knn { context: c, .. }
            | QppError::ModelIo { context: c, .. } => *c = context,
            QppError::QueueFull { .. }
            | QppError::TenantQuotaExceeded { .. }
            | QppError::ShuttingDown
            | QppError::UnknownModel { .. } => {}
        }
        self
    }
}

impl fmt::Display for QppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn layered(
            f: &mut fmt::Formatter<'_>,
            layer: &str,
            context: &str,
            source: &dyn fmt::Display,
        ) -> fmt::Result {
            if context.is_empty() {
                write!(f, "{layer} error: {source}")
            } else {
                write!(f, "{layer} error while {context}: {source}")
            }
        }
        match self {
            QppError::Linalg { context, source } => layered(f, "linalg", context, source),
            QppError::Knn { context, source } => layered(f, "knn", context, source),
            QppError::ModelIo { context, source } => layered(f, "model-io", context, source),
            QppError::QueueFull { capacity } => {
                write!(f, "serving queue is full (capacity {capacity})")
            }
            QppError::TenantQuotaExceeded { tenant, quota } => {
                write!(
                    f,
                    "tenant {tenant} exceeded its admission quota ({quota} queued)"
                )
            }
            QppError::ShuttingDown => write!(f, "service is shutting down"),
            QppError::UnknownModel { key } => write!(f, "no model registered under key {key:?}"),
        }
    }
}

impl std::error::Error for QppError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QppError::Linalg { source, .. } => Some(source),
            QppError::Knn { source, .. } => Some(source),
            QppError::ModelIo { source, .. } => Some(source.as_ref()),
            QppError::QueueFull { .. }
            | QppError::TenantQuotaExceeded { .. }
            | QppError::ShuttingDown
            | QppError::UnknownModel { .. } => None,
        }
    }
}

impl From<LinalgError> for QppError {
    fn from(source: LinalgError) -> Self {
        QppError::Linalg {
            context: "",
            source,
        }
    }
}

impl From<KnnError> for QppError {
    fn from(source: KnnError) -> Self {
        QppError::Knn {
            context: "",
            source,
        }
    }
}

impl From<ModelIoError> for QppError {
    fn from(source: ModelIoError) -> Self {
        QppError::ModelIo {
            context: "",
            source: Arc::new(source),
        }
    }
}

/// Attaches static context while converting a layer error to
/// [`QppError`] — `result.ctx("training kcca")?` instead of bare `?`.
pub trait ResultExt<T> {
    /// Converts the error to [`QppError`] and sets its context.
    fn ctx(self, context: &'static str) -> QppResult<T>;
}

impl<T, E: Into<QppError>> ResultExt<T> for Result<T, E> {
    fn ctx(self, context: &'static str) -> QppResult<T> {
        self.map_err(|e| e.into().with_context(context))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_conversions_preserve_sources() {
        let e: QppError = LinalgError::Empty("x").into();
        assert!(matches!(e, QppError::Linalg { context: "", .. }));
        let e: QppError = KnnError::EmptyReference.into();
        assert!(matches!(e, QppError::Knn { .. }));
        let e: QppError = ModelIoError::UnsupportedVersion {
            found: 9,
            supported: 1,
        }
        .into();
        assert!(matches!(e, QppError::ModelIo { .. }));
    }

    #[test]
    fn context_shows_in_display() {
        let bare: QppError = KnnError::EmptyReference.into();
        assert!(!bare.to_string().contains("while"));
        let with = bare.with_context("combining neighbors");
        let msg = with.to_string();
        assert!(msg.contains("while combining neighbors"), "{msg}");
        assert!(msg.contains("knn reference is empty"), "{msg}");
    }

    #[test]
    fn ctx_extension_converts_and_annotates() {
        let r: Result<(), LinalgError> = Err(LinalgError::Empty("kcca needs >= 4 rows"));
        let e = r.ctx("fitting kcca").unwrap_err();
        assert!(e.to_string().contains("while fitting kcca"));
    }

    #[test]
    fn errors_are_cloneable_for_batch_fanout() {
        let e: QppError = ModelIoError::ChecksumMismatch {
            recorded: "1".to_string(),
            computed: "2".to_string(),
        }
        .into();
        let copies: Vec<QppError> = (0..4).map(|_| e.clone()).collect();
        assert_eq!(copies.len(), 4);
    }

    #[test]
    fn source_chain_is_preserved() {
        use std::error::Error;
        let e: QppError = LinalgError::NotSquare { rows: 2, cols: 3 }.into();
        assert!(e.source().is_some());
        assert!(QppError::ShuttingDown.source().is_none());
    }
}
