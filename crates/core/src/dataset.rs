//! Dataset collection: run workloads through the engine, keep
//! `(query, plan, measured metrics)` records.

use crate::categories::QueryCategory;
use crate::features::{feature_dim, performance_to_kernel_space, query_features_to, FeatureKind};
use qpp_engine::{execute, optimize, Catalog, OptimizedQuery, PerfMetrics, SystemConfig};
use qpp_linalg::Matrix;
use qpp_workload::{QuerySpec, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One executed training/test query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRecord {
    /// The logical query.
    pub spec: QuerySpec,
    /// Rendered SQL text.
    pub sql: String,
    /// The optimizer's output (plan + cost + annotations).
    pub optimized: OptimizedQuery,
    /// Measured performance.
    pub metrics: PerfMetrics,
    /// Runtime category of the measured elapsed time.
    pub category: QueryCategory,
}

/// A collection of executed queries on one system configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Configuration the queries ran on.
    pub config: SystemConfig,
    /// Schema the queries ran against.
    pub schema: Schema,
    /// Executed queries.
    pub records: Vec<QueryRecord>,
}

impl Dataset {
    /// Optimizes and executes `queries` on `config`, in parallel across
    /// at most `threads` workers of the shared `qpp-par` pool. Record
    /// order matches input order regardless of worker count.
    pub fn collect(
        schema: &Schema,
        queries: Vec<QuerySpec>,
        config: &SystemConfig,
        threads: usize,
    ) -> Dataset {
        let catalog = Catalog::new(schema.clone());
        let workers = threads.max(1).min(qpp_par::current_threads());
        let records = qpp_par::with_threads(workers, || {
            qpp_par::parallel_map(&queries, 1, |spec| {
                run_query(spec.clone(), &catalog, schema, config)
            })
        });
        Dataset {
            config: config.clone(),
            schema: schema.clone(),
            records,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Query feature matrix (one row per record), filled directly into
    /// one contiguous allocation.
    pub fn feature_matrix(&self, kind: FeatureKind) -> Matrix {
        let mut out = Matrix::zeros(self.len(), feature_dim(kind));
        for (i, r) in self.records.iter().enumerate() {
            query_features_to(kind, &r.spec, &r.optimized.plan, out.row_mut(i));
        }
        out
    }

    /// Raw performance matrix (`n x 6`, canonical metric order).
    pub fn performance_matrix(&self) -> Matrix {
        let mut out = Matrix::zeros(self.len(), PerfMetrics::DIM);
        for (i, r) in self.records.iter().enumerate() {
            out.row_mut(i).copy_from_slice(&r.metrics.to_vec());
        }
        out
    }

    /// Log-space performance matrix for kernelization.
    pub fn kernel_performance_matrix(&self) -> Matrix {
        let mut out = Matrix::zeros(self.len(), PerfMetrics::DIM);
        for (i, r) in self.records.iter().enumerate() {
            out.row_mut(i)
                .copy_from_slice(&performance_to_kernel_space(&r.metrics.to_vec()));
        }
        out
    }

    /// Elapsed times, seconds.
    pub fn elapsed(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.metrics.elapsed_seconds)
            .collect()
    }

    /// Subset by record indices (clones records).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            config: self.config.clone(),
            schema: self.schema.clone(),
            records: indices.iter().map(|&i| self.records[i].clone()).collect(),
        }
    }

    /// Records of one category.
    pub fn of_category(&self, category: QueryCategory) -> Vec<usize> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.category == category)
            .map(|(i, _)| i)
            .collect()
    }

    /// Draws disjoint train/test index sets with the requested per-
    /// category counts (the paper's pool sampling: e.g. 767 feathers /
    /// 230 golf balls / 30 bowling balls for training, 45/7/9 for test).
    ///
    /// Panics if a pool is too small to satisfy `train + test`.
    pub fn sample_pools(
        &self,
        train_counts: &[(QueryCategory, usize)],
        test_counts: &[(QueryCategory, usize)],
        seed: u64,
    ) -> (Vec<usize>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = Vec::new();
        let mut test = Vec::new();
        for &(cat, _) in train_counts {
            let mut pool = self.of_category(cat);
            // Deterministic Fisher-Yates shuffle.
            for i in (1..pool.len()).rev() {
                let j = rng.random_range(0..=i);
                pool.swap(i, j);
            }
            let want_train = train_counts
                .iter()
                .find(|(c, _)| *c == cat)
                .map(|(_, n)| *n)
                .unwrap_or(0);
            let want_test = test_counts
                .iter()
                .find(|(c, _)| *c == cat)
                .map(|(_, n)| *n)
                .unwrap_or(0);
            assert!(
                pool.len() >= want_train + want_test,
                "pool for {:?} has {} queries, need {}",
                cat,
                pool.len(),
                want_train + want_test
            );
            train.extend_from_slice(&pool[..want_train]);
            test.extend_from_slice(&pool[want_train..want_train + want_test]);
        }
        (train, test)
    }
}

fn run_query(
    spec: QuerySpec,
    catalog: &Catalog,
    schema: &Schema,
    config: &SystemConfig,
) -> QueryRecord {
    let optimized = optimize(&spec, catalog, config);
    let outcome = execute(&spec, &optimized, schema, config);
    let sql = qpp_workload::sql::render(&spec);
    QueryRecord {
        category: QueryCategory::of(outcome.metrics.elapsed_seconds),
        metrics: outcome.metrics,
        optimized,
        sql,
        spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_workload::WorkloadGenerator;

    fn small_dataset(n: usize, seed: u64) -> Dataset {
        let schema = Schema::tpcds(1.0);
        let mut g = WorkloadGenerator::tpcds(1.0, seed);
        Dataset::collect(&schema, g.generate(n), &SystemConfig::neoview_4(), 3)
    }

    #[test]
    fn collect_preserves_order_and_determinism() {
        let a = small_dataset(30, 5);
        let b = small_dataset(30, 5);
        assert_eq!(a.len(), 30);
        for (ra, rb) in a.records.iter().zip(b.records.iter()) {
            assert_eq!(ra.spec.id, rb.spec.id);
            assert_eq!(ra.metrics, rb.metrics);
        }
        // Ids in input order.
        for (i, r) in a.records.iter().enumerate() {
            assert_eq!(r.spec.id, i as u64);
        }
    }

    #[test]
    fn matrices_have_consistent_shapes() {
        let d = small_dataset(20, 9);
        let x = d.feature_matrix(FeatureKind::QueryPlan);
        let y = d.performance_matrix();
        assert_eq!(x.rows(), 20);
        assert_eq!(y.shape(), (20, PerfMetrics::DIM));
        let yk = d.kernel_performance_matrix();
        assert_eq!(yk.shape(), y.shape());
        // Log space compresses: all kernel values are ≤ raw ones + 1.
        for i in 0..20 {
            for j in 0..PerfMetrics::DIM {
                assert!(yk[(i, j)] <= y[(i, j)] + 1.0);
            }
        }
    }

    #[test]
    fn subset_and_categories() {
        let d = small_dataset(25, 11);
        let feathers = d.of_category(QueryCategory::Feather);
        assert!(!feathers.is_empty());
        let sub = d.subset(&feathers);
        assert!(sub
            .records
            .iter()
            .all(|r| r.category == QueryCategory::Feather));
    }

    #[test]
    fn sample_pools_disjoint() {
        let d = small_dataset(40, 13);
        let n_feather = d.of_category(QueryCategory::Feather).len();
        assert!(n_feather >= 10, "need feathers for this test");
        let (train, test) = d.sample_pools(
            &[(QueryCategory::Feather, 6)],
            &[(QueryCategory::Feather, 3)],
            7,
        );
        assert_eq!(train.len(), 6);
        assert_eq!(test.len(), 3);
        for t in &test {
            assert!(!train.contains(t));
        }
    }

    #[test]
    #[should_panic(expected = "pool for")]
    fn sample_pools_panics_when_starved() {
        let d = small_dataset(10, 17);
        d.sample_pools(
            &[(QueryCategory::BowlingBall, 500)],
            &[(QueryCategory::BowlingBall, 500)],
            1,
        );
    }
}
