//! Query feature vectors (paper §VI-D).
//!
//! Two candidates were evaluated:
//!
//! * **SQL-text features** — nine statement statistics. Cheap, but two
//!   queries with identical text shape and different constants perform
//!   wildly differently, so accuracy was poor (Fig. 8).
//! * **Query-plan features** — for every operator kind, an *instance
//!   count* and a *cardinality sum* over the optimizer's estimates
//!   (Fig. 9). This is what the paper adopted.
//!
//! Cardinality sums span many orders of magnitude, so they are
//! log-transformed before kernelization; the paper's Gaussian kernel is
//! otherwise far too sensitive to the raw magnitudes. The same
//! `ln(1+x)` transform is applied to the performance vector.

use qpp_engine::{OpKind, Plan};
use qpp_workload::{QuerySpec, SqlTextFeatures};
use serde::{Deserialize, Serialize};

/// Which query feature vector a predictor uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Query-plan instance counts + cardinality sums (the paper's
    /// chosen vector, Fig. 9).
    QueryPlan,
    /// SQL-text statistics (the failed candidate, Fig. 8).
    SqlText,
}

/// The query-plan feature vector: one `(instance count, cardinality
/// sum)` pair per operator kind in the engine's vocabulary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanFeatures {
    /// Instance count per [`OpKind`], in `OpKind::ALL` order.
    pub counts: Vec<f64>,
    /// Estimated-cardinality sum per [`OpKind`], same order.
    pub cardinality_sums: Vec<f64>,
}

impl PlanFeatures {
    /// Dimensionality of [`PlanFeatures::to_vec`]'s output.
    pub const DIM: usize = OpKind::ALL.len() * 2;

    /// Extracts features from a physical plan.
    pub fn from_plan(plan: &Plan) -> Self {
        let mut counts = vec![0.0; OpKind::ALL.len()];
        let mut sums = vec![0.0; OpKind::ALL.len()];
        for node in &plan.nodes {
            let k = node.kind.index();
            counts[k] += 1.0;
            sums[k] += node.est_rows;
        }
        PlanFeatures {
            counts,
            cardinality_sums: sums,
        }
    }

    /// Flattens to the kernelization vector: counts followed by
    /// `ln(1 + cardinality_sum)` per operator.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(Self::DIM);
        v.extend_from_slice(&self.counts);
        v.extend(self.cardinality_sums.iter().map(|&c| (1.0 + c).ln()));
        v
    }

    /// Human-readable feature names, aligned with [`PlanFeatures::to_vec`].
    pub fn names() -> Vec<String> {
        let mut names: Vec<String> = OpKind::ALL
            .iter()
            .map(|k| format!("{}_count", k.name()))
            .collect();
        names.extend(OpKind::ALL.iter().map(|k| format!("{}_card_ln", k.name())));
        names
    }
}

/// Extracts the configured query feature vector.
pub fn query_features(kind: FeatureKind, spec: &QuerySpec, plan: &Plan) -> Vec<f64> {
    match kind {
        FeatureKind::QueryPlan => PlanFeatures::from_plan(plan).to_vec(),
        FeatureKind::SqlText => SqlTextFeatures::from_spec(spec).to_vec(),
    }
}

/// Dimensionality of [`query_features`]'s output for `kind`.
pub fn feature_dim(kind: FeatureKind) -> usize {
    match kind {
        FeatureKind::QueryPlan => PlanFeatures::DIM,
        FeatureKind::SqlText => SqlTextFeatures::DIM,
    }
}

/// Writes the configured query feature vector into a preallocated row
/// of length [`feature_dim`]`(kind)` — the contiguous batch-assembly
/// path (one matrix row per query, no per-query row vectors escaping).
pub fn query_features_to(kind: FeatureKind, spec: &QuerySpec, plan: &Plan, out: &mut [f64]) {
    out.copy_from_slice(&query_features(kind, spec, plan));
}

/// Log-transforms a raw performance vector for kernelization:
/// `ln(1 + x)` per metric.
pub fn performance_to_kernel_space(metrics: &[f64]) -> Vec<f64> {
    metrics.iter().map(|&x| (1.0 + x.max(0.0)).ln()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_engine::{optimize, Catalog, SystemConfig};
    use qpp_workload::{Schema, WorkloadGenerator};

    fn sample_plan() -> (QuerySpec, Plan) {
        let cat = Catalog::new(Schema::tpcds(1.0));
        let cfg = SystemConfig::neoview_4();
        let mut g = WorkloadGenerator::tpcds(1.0, 2);
        let q = g.generate_one();
        let plan = optimize(&q, &cat, &cfg).plan;
        (q, plan)
    }

    #[test]
    fn plan_features_count_operators() {
        let (_, plan) = sample_plan();
        let f = PlanFeatures::from_plan(&plan);
        let total: f64 = f.counts.iter().sum();
        assert_eq!(total as usize, plan.nodes.len());
        // FileScan count matches plan.
        let fs = OpKind::FileScan.index();
        assert_eq!(f.counts[fs] as usize, plan.count(OpKind::FileScan));
        assert!((f.cardinality_sums[fs] - plan.cardinality_sum(OpKind::FileScan)).abs() < 1e-9);
    }

    #[test]
    fn vector_has_fixed_dim_and_is_finite() {
        let (_, plan) = sample_plan();
        let v = PlanFeatures::from_plan(&plan).to_vec();
        assert_eq!(v.len(), PlanFeatures::DIM);
        assert!(v.iter().all(|x| x.is_finite()));
        assert_eq!(PlanFeatures::names().len(), PlanFeatures::DIM);
    }

    #[test]
    fn cardinalities_are_log_scaled() {
        let (_, plan) = sample_plan();
        let f = PlanFeatures::from_plan(&plan);
        let v = f.to_vec();
        let n = OpKind::ALL.len();
        for (i, &raw) in f.cardinality_sums.iter().enumerate() {
            assert!((v[n + i] - (1.0 + raw).ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn feature_kind_dispatch() {
        let (q, plan) = sample_plan();
        assert_eq!(
            query_features(FeatureKind::QueryPlan, &q, &plan).len(),
            PlanFeatures::DIM
        );
        assert_eq!(
            query_features(FeatureKind::SqlText, &q, &plan).len(),
            SqlTextFeatures::DIM
        );
    }

    #[test]
    fn performance_log_transform() {
        let v = performance_to_kernel_space(&[0.0, (std::f64::consts::E - 1.0), 1e6]);
        assert!(v[0].abs() < 1e-12);
        assert!((v[1] - 1.0).abs() < 1e-12);
        assert!(v[2] > 13.0 && v[2] < 14.0);
    }
}
