//! Two-step prediction with per-category models (paper Experiment 3).
//!
//! Step 1: a first KCCA model classifies the query as feather / golf
//! ball / bowling ball from its nearest neighbors' *actual* runtimes
//! (the paper illustrates this with a majority vote; see
//! [`TwoStepPredictor::classify`] for the magnitude-based refinement
//! used here).
//!
//! Step 2: a category-specific KCCA model — trained only on that
//! category's queries — produces the metric predictions. The paper
//! found this sharpens accuracy for the under-represented long-running
//! categories (Fig. 14) and transfers better to foreign schemas
//! (Fig. 15).

use crate::categories::QueryCategory;
use crate::dataset::Dataset;
use crate::error::QppError;
use crate::features::query_features;
use crate::predictor::{KccaPredictor, Prediction, PredictorOptions};
use qpp_engine::Plan;
use qpp_workload::QuerySpec;
use serde::{Deserialize, Serialize};

/// Minimum per-category training size below which the category falls
/// back to the global model (KCCA needs a handful of points).
const MIN_CATEGORY_TRAINING: usize = 8;

/// The two-step predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoStepPredictor {
    classifier: KccaPredictor,
    /// Per-category specialist models (falls back to `classifier` when
    /// a category had too few training queries).
    specialists: Vec<(QueryCategory, KccaPredictor)>,
    options: PredictorOptions,
}

impl TwoStepPredictor {
    /// Trains the classifier on the full dataset and one specialist per
    /// pooled category that has enough training queries.
    pub fn train(dataset: &Dataset, options: PredictorOptions) -> Result<Self, QppError> {
        let classifier = KccaPredictor::train(dataset, options)?;
        let mut specialists = Vec::new();
        for &cat in &QueryCategory::POOLED {
            let idx = dataset.of_category(cat);
            if idx.len() >= MIN_CATEGORY_TRAINING {
                let sub = dataset.subset(&idx);
                // Specialists see fewer points; cap the ICD rank and the
                // number of canonical components so the reduced
                // eigenproblem stays well-posed (a 30-query bowling-ball
                // model cannot support 16 components).
                let mut sub_opts = options;
                sub_opts.kcca.max_rank = sub_opts.kcca.max_rank.min(idx.len());
                sub_opts.kcca.components = sub_opts.kcca.components.min((idx.len() / 4).max(2));
                sub_opts.neighbors = sub_opts.neighbors.min(idx.len());
                specialists.push((cat, KccaPredictor::train(&sub, sub_opts)?));
            }
        }
        Ok(TwoStepPredictor {
            classifier,
            specialists,
            options,
        })
    }

    /// Step 1 alone: classify a query by neighbor majority vote.
    pub fn classify(&self, spec: &QuerySpec, plan: &Plan) -> Result<QueryCategory, QppError> {
        let features = query_features(self.options.feature_kind, spec, plan);
        let p = self.classifier.predict_features(&features)?;
        Ok(self.vote(&p))
    }

    /// Step-1 classification from the first model's neighbors.
    ///
    /// The paper describes predicting the category "from the neighbors"
    /// and illustrates it with a majority vote. We use the neighbors'
    /// combined elapsed time (the first model's elapsed prediction) and
    /// categorize that: it agrees with the majority vote whenever the
    /// neighbors agree, and resolves mixed neighborhoods by magnitude
    /// instead of head-count — which matters exactly at the category
    /// boundaries the paper calls out as the failure mode ("the test
    /// query was too close to the temporal threshold").
    fn vote(&self, p: &Prediction) -> QueryCategory {
        let by_elapsed = QueryCategory::of(p.metrics.elapsed_seconds);
        if by_elapsed == QueryCategory::WreckingBall {
            // No wrecking-ball pool exists; route to the longest class.
            return QueryCategory::BowlingBall;
        }
        by_elapsed
    }

    /// Full two-step prediction.
    pub fn predict(&self, spec: &QuerySpec, plan: &Plan) -> Result<Prediction, QppError> {
        let features = query_features(self.options.feature_kind, spec, plan);
        let first = self.classifier.predict_features(&features)?;
        let category = self.vote(&first);
        match self.specialists.iter().find(|(c, _)| *c == category) {
            Some((_, model)) => model.predict_features(&features),
            None => Ok(first),
        }
    }

    /// Predicts every record of a dataset.
    pub fn predict_dataset(&self, dataset: &Dataset) -> Result<Vec<Prediction>, QppError> {
        dataset
            .records
            .iter()
            .map(|r| self.predict(&r.spec, &r.optimized.plan))
            .collect()
    }

    /// Categories that received specialist models.
    pub fn specialist_categories(&self) -> Vec<QueryCategory> {
        self.specialists.iter().map(|(c, _)| *c).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_engine::SystemConfig;
    use qpp_workload::{Schema, WorkloadGenerator};

    fn dataset(n: usize, seed: u64) -> Dataset {
        let schema = Schema::tpcds(1.0);
        let mut g = WorkloadGenerator::tpcds(1.0, seed);
        Dataset::collect(&schema, g.generate(n), &SystemConfig::neoview_4(), 2)
    }

    #[test]
    fn trains_feather_specialist() {
        let train = dataset(150, 21);
        let model = TwoStepPredictor::train(&train, PredictorOptions::default()).unwrap();
        // Feathers dominate the workload, so a feather specialist exists.
        assert!(model
            .specialist_categories()
            .contains(&QueryCategory::Feather));
    }

    #[test]
    fn classification_is_mostly_right_for_feathers() {
        let train = dataset(200, 23);
        let test = dataset(40, 24);
        let model = TwoStepPredictor::train(&train, PredictorOptions::default()).unwrap();
        let mut correct = 0;
        let mut feathers = 0;
        for r in &test.records {
            if r.category != QueryCategory::Feather {
                continue;
            }
            feathers += 1;
            if model.classify(&r.spec, &r.optimized.plan).unwrap() == QueryCategory::Feather {
                correct += 1;
            }
        }
        assert!(feathers > 10);
        assert!(
            correct * 10 >= feathers * 8,
            "only {correct}/{feathers} feathers classified correctly"
        );
    }

    #[test]
    fn predictions_are_valid_metrics() {
        let train = dataset(150, 25);
        let test = dataset(25, 26);
        let model = TwoStepPredictor::train(&train, PredictorOptions::default()).unwrap();
        for p in model.predict_dataset(&test).unwrap() {
            assert!(p.metrics.is_valid());
        }
    }

    #[test]
    fn falls_back_to_global_model_for_missing_categories() {
        // A tiny all-feather dataset: no golf/bowling specialists, but
        // prediction still works for any query.
        let train = dataset(60, 27);
        let feather_idx = train.of_category(QueryCategory::Feather);
        let feathers = train.subset(&feather_idx);
        let model = TwoStepPredictor::train(&feathers, PredictorOptions::default()).unwrap();
        let r = &feathers.records[0];
        let p = model.predict(&r.spec, &r.optimized.plan).unwrap();
        assert!(p.metrics.is_valid());
    }
}
