//! Query runtime categories (paper Fig. 2).
//!
//! The paper sorts queries by elapsed time into **feathers** (< 3 min),
//! **golf balls** (3–30 min) and **bowling balls** (30 min – 2 h), with
//! **wrecking balls** beyond that excluded from the pools. The
//! boundaries are arbitrary — the paper stresses its approach does not
//! depend on them — but they organize the experiments and the two-step
//! predictor.

use qpp_linalg::vector;
use serde::{Deserialize, Serialize};

/// Runtime class of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryCategory {
    /// Under 3 minutes.
    Feather,
    /// 3 to 30 minutes.
    GolfBall,
    /// 30 minutes to 2 hours.
    BowlingBall,
    /// Over 2 hours ("too long to be bowling balls").
    WreckingBall,
}

impl QueryCategory {
    /// Feather/golf boundary, seconds.
    pub const FEATHER_MAX: f64 = 180.0;
    /// Golf/bowling boundary, seconds.
    pub const GOLF_MAX: f64 = 1800.0;
    /// Bowling/wrecking boundary, seconds.
    pub const BOWLING_MAX: f64 = 7200.0;

    /// Categorizes an elapsed time in seconds.
    pub fn of(elapsed_seconds: f64) -> Self {
        if elapsed_seconds < Self::FEATHER_MAX {
            QueryCategory::Feather
        } else if elapsed_seconds < Self::GOLF_MAX {
            QueryCategory::GolfBall
        } else if elapsed_seconds < Self::BOWLING_MAX {
            QueryCategory::BowlingBall
        } else {
            QueryCategory::WreckingBall
        }
    }

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            QueryCategory::Feather => "feather",
            QueryCategory::GolfBall => "golf ball",
            QueryCategory::BowlingBall => "bowling ball",
            QueryCategory::WreckingBall => "wrecking ball",
        }
    }

    /// The three pool categories (wrecking balls are excluded from
    /// training/test pools, as in the paper).
    pub const POOLED: [QueryCategory; 3] = [
        QueryCategory::Feather,
        QueryCategory::GolfBall,
        QueryCategory::BowlingBall,
    ];
}

/// Summary row of a category pool (the Fig. 2 table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolSummary {
    /// Category.
    pub category: QueryCategory,
    /// Number of query instances in the pool.
    pub instances: usize,
    /// Mean elapsed seconds.
    pub mean_elapsed: f64,
    /// Minimum elapsed seconds.
    pub min_elapsed: f64,
    /// Maximum elapsed seconds.
    pub max_elapsed: f64,
}

/// Builds the Fig. 2 summary for a set of elapsed times.
pub fn summarize_pools(elapsed: &[f64]) -> Vec<PoolSummary> {
    QueryCategory::POOLED
        .iter()
        .map(|&category| {
            let times: Vec<f64> = elapsed
                .iter()
                .copied()
                .filter(|&t| QueryCategory::of(t) == category)
                .collect();
            let instances = times.len();
            let (mean, min, max) = if times.is_empty() {
                (0.0, 0.0, 0.0)
            } else {
                let sum = vector::sum(&times);
                let min = vector::min_iter(f64::INFINITY, times.iter().copied());
                let max = vector::max_iter(0.0, times.iter().copied());
                (sum / instances as f64, min, max)
            };
            PoolSummary {
                category,
                instances,
                mean_elapsed: mean,
                min_elapsed: min,
                max_elapsed: max,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_match_paper() {
        assert_eq!(QueryCategory::of(0.1), QueryCategory::Feather);
        assert_eq!(QueryCategory::of(179.9), QueryCategory::Feather);
        assert_eq!(QueryCategory::of(180.0), QueryCategory::GolfBall);
        assert_eq!(QueryCategory::of(1799.0), QueryCategory::GolfBall);
        assert_eq!(QueryCategory::of(1800.0), QueryCategory::BowlingBall);
        assert_eq!(QueryCategory::of(7199.0), QueryCategory::BowlingBall);
        assert_eq!(QueryCategory::of(7200.0), QueryCategory::WreckingBall);
    }

    #[test]
    fn pool_summary_aggregates() {
        let elapsed = vec![10.0, 20.0, 200.0, 2000.0, 9000.0];
        let pools = summarize_pools(&elapsed);
        assert_eq!(pools.len(), 3);
        let feather = &pools[0];
        assert_eq!(feather.instances, 2);
        assert_eq!(feather.mean_elapsed, 15.0);
        assert_eq!(feather.min_elapsed, 10.0);
        assert_eq!(feather.max_elapsed, 20.0);
        // Wrecking ball (9000 s) appears in no pool.
        let total: usize = pools.iter().map(|p| p.instances).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn empty_category_is_zeroed() {
        let pools = summarize_pools(&[1.0]);
        assert_eq!(pools[1].instances, 0);
        assert_eq!(pools[1].mean_elapsed, 0.0);
    }
}
