//! Sliding-window retraining (paper §VII-C.4, future work).
//!
//! The paper notes KCCA training is cubic and proposes "a sliding
//! training set of data with a larger emphasis on more recently
//! executed queries". This module implements that: a bounded window of
//! the most recent executed queries, refreshed into a new model when
//! enough new observations accumulate.

use crate::dataset::{Dataset, QueryRecord};
use crate::error::QppError;
use crate::predictor::{KccaPredictor, PredictorOptions};
use std::collections::VecDeque;

/// A continuously retrainable predictor over a sliding window of
/// recently executed queries.
#[derive(Debug, Clone)]
pub struct SlidingWindowPredictor {
    window: VecDeque<QueryRecord>,
    capacity: usize,
    refresh_every: usize,
    seen_since_refresh: usize,
    min_train: usize,
    options: PredictorOptions,
    model: Option<KccaPredictor>,
    /// Dataset template (config + schema) for rebuilding.
    template: Dataset,
}

/// Fewest records KCCA can sensibly train on; retraining is deferred
/// until the window holds at least this many.
pub const MIN_TRAIN_WINDOW: usize = 8;

impl SlidingWindowPredictor {
    /// Creates a window of at most `capacity` records that retrains
    /// after every `refresh_every` new observations.
    pub fn new(
        template: Dataset,
        capacity: usize,
        refresh_every: usize,
        options: PredictorOptions,
    ) -> Self {
        assert!(
            capacity >= MIN_TRAIN_WINDOW,
            "window too small to train KCCA"
        );
        assert!(refresh_every >= 1);
        // Keep only the newest `capacity` records of an oversized
        // template: the window invariant (len <= capacity, oldest
        // evicted first) must hold from construction, not only after
        // the first `observe`.
        let mut window: VecDeque<QueryRecord> = template.records.iter().cloned().collect();
        while window.len() > capacity {
            window.pop_front();
        }
        SlidingWindowPredictor {
            window,
            capacity,
            refresh_every,
            seen_since_refresh: 0,
            min_train: MIN_TRAIN_WINDOW,
            options,
            model: None,
            template,
        }
    }

    /// Overrides the minimum window size required before any retrain
    /// (clamped to at least [`MIN_TRAIN_WINDOW`], at most `capacity`).
    pub fn with_min_train(mut self, min_train: usize) -> Self {
        self.min_train = min_train.clamp(MIN_TRAIN_WINDOW, self.capacity);
        self
    }

    /// Observes one newly executed query; retrains when due. Returns
    /// true when a retrain happened.
    ///
    /// Retraining is deferred until the window holds at least
    /// `min_train` records: a fresh window seeded with too few records
    /// (or none) used to retrain on the very first observation because
    /// `model.is_none()`, handing KCCA a training set it cannot fit.
    pub fn observe(&mut self, record: QueryRecord) -> Result<bool, QppError> {
        self.push(record);
        self.seen_since_refresh += 1;
        if self.window.len() < self.min_train {
            return Ok(false);
        }
        if self.model.is_none() || self.seen_since_refresh >= self.refresh_every {
            self.retrain()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Appends one record to the window (evicting the oldest beyond
    /// capacity) without any retraining. The adaptive control plane
    /// uses this to keep the window fresh while retrains run on a
    /// background worker at moments *it* chooses.
    pub fn push(&mut self, record: QueryRecord) {
        self.window.push_back(record);
        while self.window.len() > self.capacity {
            self.window.pop_front();
        }
    }

    /// Forces a retrain on the current window.
    pub fn retrain(&mut self) -> Result<(), QppError> {
        let ds = self.window_dataset();
        self.model = Some(KccaPredictor::train(&ds, self.options)?);
        self.seen_since_refresh = 0;
        Ok(())
    }

    /// Snapshot of the current window as a standalone dataset (the
    /// exact records a retrain would train on).
    pub fn window_dataset(&self) -> Dataset {
        Dataset {
            config: self.template.config.clone(),
            schema: self.template.schema.clone(),
            records: self.window.iter().cloned().collect(),
        }
    }

    /// Minimum window size required before a retrain is attempted.
    pub fn min_train(&self) -> usize {
        self.min_train
    }

    /// The predictor options a retrain would train with.
    pub fn options(&self) -> PredictorOptions {
        self.options
    }

    /// The current model, if one has been trained.
    pub fn model(&self) -> Option<&KccaPredictor> {
        self.model.as_ref()
    }

    /// Current window size.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_engine::SystemConfig;
    use qpp_workload::{Schema, WorkloadGenerator};

    fn dataset(n: usize, seed: u64) -> Dataset {
        let schema = Schema::tpcds(1.0);
        let mut g = WorkloadGenerator::tpcds(1.0, seed);
        Dataset::collect(&schema, g.generate(n), &SystemConfig::neoview_4(), 2)
    }

    #[test]
    fn window_evicts_oldest_and_retrains() {
        let seed_data = dataset(40, 71);
        let more = dataset(30, 72);
        let mut sw =
            SlidingWindowPredictor::new(seed_data.clone(), 50, 10, PredictorOptions::default());
        sw.retrain().unwrap();
        assert!(sw.model().is_some());
        let before = sw.model().unwrap().training_size();
        let mut retrains = 0;
        for r in more.records {
            if sw.observe(r).unwrap() {
                retrains += 1;
            }
        }
        assert!(retrains >= 3, "retrained {retrains} times");
        assert_eq!(sw.window_len(), 50); // capacity respected
        let after = sw.model().unwrap().training_size();
        assert_eq!(after, 50);
        assert!(after >= before);
    }

    /// Regression: the constructor used to copy the whole template into
    /// the window without trimming, so a template larger than `capacity`
    /// violated the window invariant (and the first retrain trained on
    /// more records than the window was ever supposed to hold) until
    /// enough `observe` calls flushed the excess.
    #[test]
    fn constructor_trims_oversized_template_to_capacity() {
        let seed_data = dataset(40, 75);
        let newest_ids: Vec<u64> = seed_data.records[30..].iter().map(|r| r.spec.id).collect();
        let sw = SlidingWindowPredictor::new(seed_data, 10, 5, PredictorOptions::default());
        assert_eq!(sw.window_len(), 10, "window must respect capacity at birth");
        let window_ids: Vec<u64> = sw.window.iter().map(|r| r.spec.id).collect();
        assert_eq!(
            window_ids, newest_ids,
            "trimming must evict the oldest records, keeping the newest"
        );
    }

    /// Regression: `observe` used to retrain whenever `model.is_none()`,
    /// including on the very first observation into an empty window —
    /// KCCA then trained on a single record and failed. Retraining must
    /// wait until the window reaches the minimum trainable size.
    #[test]
    fn observe_defers_retraining_until_window_is_trainable() {
        let seed = dataset(0, 76); // empty template: config + schema only
        let feed = dataset(MIN_TRAIN_WINDOW + 4, 77);
        let mut sw = SlidingWindowPredictor::new(seed, 32, 1, PredictorOptions::default());
        assert_eq!(sw.window_len(), 0);
        for (i, r) in feed.records.into_iter().enumerate() {
            let retrained = sw
                .observe(r)
                .unwrap_or_else(|e| panic!("observation {i} must not fail: {e}"));
            if i + 1 < MIN_TRAIN_WINDOW {
                assert!(
                    !retrained,
                    "retrained at window size {} (< minimum {})",
                    i + 1,
                    MIN_TRAIN_WINDOW
                );
                assert!(sw.model().is_none());
            } else {
                // refresh_every = 1: every observation past the minimum
                // retrains, and the model trains on the full window.
                assert!(retrained, "no retrain at trainable size {}", i + 1);
                assert_eq!(sw.model().unwrap().training_size(), i + 1);
            }
        }
    }

    #[test]
    fn push_never_retrains_and_window_dataset_matches() {
        let seed = dataset(10, 78);
        let extra = dataset(5, 79);
        let mut sw = SlidingWindowPredictor::new(seed, 12, 1, PredictorOptions::default());
        for r in extra.records {
            sw.push(r);
        }
        assert!(sw.model().is_none(), "push must not train");
        assert_eq!(sw.window_len(), 12, "capacity still enforced");
        let ds = sw.window_dataset();
        assert_eq!(ds.len(), 12);
        let window_ids: Vec<u64> = sw.window.iter().map(|r| r.spec.id).collect();
        let ds_ids: Vec<u64> = ds.records.iter().map(|r| r.spec.id).collect();
        assert_eq!(window_ids, ds_ids);
    }

    #[test]
    fn model_stays_usable_between_refreshes() {
        let seed_data = dataset(30, 73);
        let extra = dataset(3, 74);
        let mut sw =
            SlidingWindowPredictor::new(seed_data.clone(), 64, 100, PredictorOptions::default());
        sw.retrain().unwrap();
        for r in extra.records {
            sw.observe(r).unwrap();
        }
        let r = &seed_data.records[0];
        let p = sw
            .model()
            .unwrap()
            .predict(&r.spec, &r.optimized.plan)
            .unwrap();
        assert!(p.metrics.is_valid());
    }
}
