//! Baseline predictors the paper compares against.
//!
//! * [`RegressionPredictor`] — per-metric ordinary least squares on the
//!   raw plan features (§V-A, Figs. 3–4). Kept deliberately unclamped
//!   so experiments can count the physically impossible negative
//!   predictions the paper reports.
//! * [`OptimizerCostModel`] — the query optimizer's abstract cost plus
//!   a log-log line of best fit to elapsed time (Fig. 17; "since the
//!   optimizer cost units are not time units, we cannot draw a perfect
//!   prediction line — we instead draw a line of best fit").
//! * [`PqrPredictor`] — the PQR approach from related work (§III):
//!   a decision tree over plan features predicting *ranges* of
//!   execution time only. Useful as the "single metric, coarse
//!   granularity" contrast to KCCA's six simultaneous point estimates.

use crate::categories::QueryCategory;
use crate::dataset::Dataset;
use crate::error::{QppError, ResultExt};
use crate::features::{query_features, FeatureKind};
use qpp_engine::{PerfMetrics, Plan};
use qpp_linalg::{LinalgError, Matrix};
use qpp_ml::MetricRegression;
use qpp_workload::QuerySpec;

/// Linear-regression baseline over plan features.
#[derive(Debug, Clone)]
pub struct RegressionPredictor {
    model: MetricRegression,
    feature_kind: FeatureKind,
}

impl RegressionPredictor {
    /// Fits one OLS model per metric.
    pub fn train(dataset: &Dataset, feature_kind: FeatureKind) -> Result<Self, QppError> {
        let x = dataset.feature_matrix(feature_kind);
        let y = dataset.performance_matrix();
        Ok(RegressionPredictor {
            model: MetricRegression::fit(&x, &y).ctx("fitting ols baseline")?,
            feature_kind,
        })
    }

    /// Predicts all six metrics; values may be negative (that is the
    /// documented failure mode of this baseline).
    pub fn predict(&self, spec: &QuerySpec, plan: &Plan) -> Result<Vec<f64>, QppError> {
        let f = query_features(self.feature_kind, spec, plan);
        self.model.predict(&f).ctx("ols prediction")
    }

    /// Predicts a whole dataset; rows align with records.
    pub fn predict_dataset(&self, dataset: &Dataset) -> Result<Matrix, QppError> {
        let x = dataset.feature_matrix(self.feature_kind);
        self.model.predict_matrix(&x).ctx("ols batch prediction")
    }

    /// Counts predictions of `metric` (canonical index) that went
    /// negative — the paper's "76 data points had negative predicted
    /// times" observation.
    pub fn count_negative(&self, dataset: &Dataset, metric: usize) -> Result<usize, QppError> {
        assert!(metric < PerfMetrics::DIM);
        let p = self.predict_dataset(dataset)?;
        Ok((0..p.rows()).filter(|&i| p[(i, metric)] < 0.0).count())
    }
}

/// The optimizer-cost baseline: predicts elapsed time by fitting
/// `ln(time) = a + b ln(cost)` on training data.
#[derive(Debug, Clone)]
pub struct OptimizerCostModel {
    /// Intercept of the log-log best-fit line.
    pub intercept: f64,
    /// Slope of the log-log best-fit line.
    pub slope: f64,
}

impl OptimizerCostModel {
    /// Fits the line of best fit on (cost, elapsed) pairs.
    pub fn train(dataset: &Dataset) -> Result<Self, QppError> {
        let n = dataset.len();
        if n < 2 {
            return Err(LinalgError::Empty("optimizer cost model").into());
        }
        let mut x = Matrix::zeros(n, 1);
        let mut y = Matrix::zeros(n, 1);
        for (i, r) in dataset.records.iter().enumerate() {
            x[(i, 0)] = r.optimized.plan.optimizer_cost.max(1e-9).ln();
            y[(i, 0)] = r.metrics.elapsed_seconds.max(1e-9).ln();
        }
        let ls = qpp_linalg::LeastSquares::fit(&x, &y).ctx("fitting cost line")?;
        let coef = ls.coefficients();
        Ok(OptimizerCostModel {
            intercept: coef[(0, 0)],
            slope: coef[(1, 0)],
        })
    }

    /// Predicted elapsed seconds for a plan's optimizer cost.
    pub fn predict_elapsed(&self, plan: &Plan) -> f64 {
        (self.intercept + self.slope * plan.optimizer_cost.max(1e-9).ln()).exp()
    }

    /// Predicts elapsed time for every record.
    pub fn predict_dataset(&self, dataset: &Dataset) -> Vec<f64> {
        dataset
            .records
            .iter()
            .map(|r| self.predict_elapsed(&r.optimized.plan))
            .collect()
    }
}

/// PQR-style runtime-range predictor: a classification tree over plan
/// features whose classes are log-spaced elapsed-time buckets.
#[derive(Debug, Clone)]
pub struct PqrPredictor {
    tree: qpp_ml::DecisionTree,
    feature_kind: FeatureKind,
    /// Bucket upper bounds, seconds (ascending; last is +inf).
    bounds: Vec<f64>,
}

impl PqrPredictor {
    /// Default PQR buckets: sub-second, second-scale, the paper's
    /// feather/golf/bowling boundaries, and beyond.
    pub fn default_bounds() -> Vec<f64> {
        vec![
            1.0,
            10.0,
            QueryCategory::FEATHER_MAX,
            QueryCategory::GOLF_MAX,
            QueryCategory::BOWLING_MAX,
            f64::INFINITY,
        ]
    }

    /// Trains the range tree.
    pub fn train(
        dataset: &Dataset,
        feature_kind: FeatureKind,
        bounds: Vec<f64>,
    ) -> Result<Self, QppError> {
        assert!(!bounds.is_empty(), "need at least one bucket bound");
        if dataset.is_empty() {
            return Err(LinalgError::Empty("pqr training set").into());
        }
        let x = dataset.feature_matrix(feature_kind);
        let labels: Vec<usize> = dataset
            .elapsed()
            .iter()
            .map(|&t| bucket_of(&bounds, t))
            .collect();
        let tree = qpp_ml::DecisionTree::fit(&x, &labels, qpp_ml::TreeOptions::default());
        Ok(PqrPredictor {
            tree,
            feature_kind,
            bounds,
        })
    }

    /// Predicted elapsed-time range `(lo, hi)` in seconds.
    pub fn predict_range(&self, spec: &QuerySpec, plan: &Plan) -> (f64, f64) {
        let f = query_features(self.feature_kind, spec, plan);
        let class = self.tree.predict(&f);
        let hi = self.bounds[class.min(self.bounds.len() - 1)];
        let lo = if class == 0 {
            0.0
        } else {
            self.bounds[class - 1]
        };
        (lo, hi)
    }

    /// Fraction of `dataset` whose actual elapsed time falls inside the
    /// predicted range.
    pub fn range_accuracy(&self, dataset: &Dataset) -> f64 {
        if dataset.is_empty() {
            return 0.0;
        }
        let hits = dataset
            .records
            .iter()
            .filter(|r| {
                let (lo, hi) = self.predict_range(&r.spec, &r.optimized.plan);
                let t = r.metrics.elapsed_seconds;
                t >= lo && t < hi
            })
            .count();
        hits as f64 / dataset.len() as f64
    }
}

fn bucket_of(bounds: &[f64], t: f64) -> usize {
    bounds
        .iter()
        .position(|&b| t < b)
        .unwrap_or(bounds.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_engine::SystemConfig;
    use qpp_workload::{Schema, WorkloadGenerator};

    fn dataset(n: usize, seed: u64) -> Dataset {
        let schema = Schema::tpcds(1.0);
        let mut g = WorkloadGenerator::tpcds(1.0, seed);
        Dataset::collect(&schema, g.generate(n), &SystemConfig::neoview_4(), 2)
    }

    #[test]
    fn regression_trains_and_predicts() {
        let d = dataset(120, 31);
        let m = RegressionPredictor::train(&d, FeatureKind::QueryPlan).unwrap();
        let p = m
            .predict(&d.records[0].spec, &d.records[0].optimized.plan)
            .unwrap();
        assert_eq!(p.len(), PerfMetrics::DIM);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn regression_produces_negative_predictions_on_skewed_targets() {
        // The Figs. 3–4 phenomenon: heavy-tailed targets + OLS ⇒ some
        // negative predictions on the training set itself.
        let d = dataset(400, 33);
        let m = RegressionPredictor::train(&d, FeatureKind::QueryPlan).unwrap();
        let neg_elapsed = m.count_negative(&d, 0).unwrap();
        let neg_used = m.count_negative(&d, 5).unwrap();
        assert!(
            neg_elapsed + neg_used > 0,
            "expected some negative OLS predictions"
        );
    }

    #[test]
    fn cost_model_is_order_of_magnitude_only() {
        let d = dataset(150, 35);
        let m = OptimizerCostModel::train(&d).unwrap();
        assert!(m.slope.is_finite() && m.intercept.is_finite());
        let preds = m.predict_dataset(&d);
        assert!(preds.iter().all(|p| *p > 0.0));
        // Fig. 17's point: cost units do not map to time — a healthy
        // share of estimates miss by several-fold even after the best
        // fit (the widest misses in the pooled experiment reach 10-100x,
        // see the experiments harness).
        let big_misses = preds
            .iter()
            .zip(d.elapsed().iter())
            .filter(|(p, a)| {
                let ratio = (*p / *a).max(*a / *p);
                ratio > 3.0
            })
            .count();
        assert!(
            big_misses > d.len() / 20,
            "only {big_misses}/{} cost estimates are 3x off",
            d.len()
        );
    }

    #[test]
    fn cost_model_needs_data() {
        let d = dataset(1, 37);
        assert!(OptimizerCostModel::train(&d).is_err());
    }

    #[test]
    fn pqr_predicts_ranges_better_than_chance() {
        let train = dataset(400, 39);
        let test = dataset(80, 40);
        let m = PqrPredictor::train(
            &train,
            FeatureKind::QueryPlan,
            PqrPredictor::default_bounds(),
        )
        .unwrap();
        let acc = m.range_accuracy(&test);
        // Six buckets; chance would be well under 40%.
        assert!(acc > 0.4, "range accuracy {acc}");
        // Ranges are well-formed.
        let (lo, hi) = m.predict_range(&test.records[0].spec, &test.records[0].optimized.plan);
        assert!(lo < hi);
    }

    #[test]
    fn pqr_bucketing_is_exhaustive() {
        let bounds = PqrPredictor::default_bounds();
        assert_eq!(bucket_of(&bounds, 0.1), 0);
        assert_eq!(bucket_of(&bounds, 5.0), 1);
        assert_eq!(bucket_of(&bounds, 100.0), 2);
        assert_eq!(bucket_of(&bounds, 500.0), 3);
        assert_eq!(bucket_of(&bounds, 3000.0), 4);
        assert_eq!(bucket_of(&bounds, 1e9), 5);
    }
}
