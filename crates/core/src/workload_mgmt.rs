//! Workload management decisions driven by predictions (paper §I).
//!
//! "Should we run this query? If so, when? How long do we wait for it
//! to complete before deciding that something went wrong (so we should
//! kill it)?" — this module turns metric predictions into those
//! decisions: admission control against resource/deadline budgets, a
//! kill timeout derived from the predicted runtime, and anomaly
//! flagging from prediction confidence.

use crate::predictor::Prediction;
use qpp_linalg::vector;
use serde::{Deserialize, Serialize};

/// Admission policy limits.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Longest acceptable predicted runtime, seconds.
    pub max_elapsed_seconds: f64,
    /// Largest acceptable predicted message-byte volume (interconnect
    /// pressure proxy); `f64::INFINITY` disables the check.
    pub max_message_bytes: f64,
    /// Largest acceptable predicted disk I/O count.
    pub max_disk_ios: f64,
    /// Neighbor-distance threshold above which a prediction is deemed
    /// unreliable and the query is deferred for human review.
    pub confidence_distance_threshold: f64,
    /// Safety factor applied to the predicted runtime when deriving the
    /// kill timeout ("how long do we wait before killing it").
    pub kill_timeout_factor: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_elapsed_seconds: 2.0 * 3600.0,
            max_message_bytes: f64::INFINITY,
            max_disk_ios: f64::INFINITY,
            confidence_distance_threshold: f64::INFINITY,
            kill_timeout_factor: 3.0,
        }
    }
}

/// Outcome of an admission decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// Run now; kill if it exceeds the embedded timeout (seconds).
    Admit {
        /// Kill deadline derived from the prediction.
        kill_timeout_seconds: f64,
    },
    /// Predicted to exceed a resource limit; reject or defer to an
    /// off-peak window.
    Reject {
        /// Which limit tripped.
        reason: String,
    },
    /// The model has not seen similar queries (large neighbor
    /// distance); a human should look before running.
    ReviewRequired {
        /// Observed neighbor distance.
        confidence_distance: f64,
    },
}

/// Decides admission for one predicted query.
pub fn decide(policy: &AdmissionPolicy, prediction: &Prediction) -> AdmissionDecision {
    if prediction.confidence_distance > policy.confidence_distance_threshold {
        return AdmissionDecision::ReviewRequired {
            confidence_distance: prediction.confidence_distance,
        };
    }
    let m = &prediction.metrics;
    if m.elapsed_seconds > policy.max_elapsed_seconds {
        return AdmissionDecision::Reject {
            reason: format!(
                "predicted elapsed {:.0}s exceeds limit {:.0}s",
                m.elapsed_seconds, policy.max_elapsed_seconds
            ),
        };
    }
    if m.message_bytes > policy.max_message_bytes {
        return AdmissionDecision::Reject {
            reason: format!(
                "predicted message volume {:.0}B exceeds limit {:.0}B",
                m.message_bytes, policy.max_message_bytes
            ),
        };
    }
    if m.disk_ios > policy.max_disk_ios {
        return AdmissionDecision::Reject {
            reason: format!(
                "predicted disk I/O {:.0} exceeds limit {:.0}",
                m.disk_ios, policy.max_disk_ios
            ),
        };
    }
    AdmissionDecision::Admit {
        kill_timeout_seconds: m.elapsed_seconds * policy.kill_timeout_factor,
    }
}

/// Orders a batch of admitted queries shortest-predicted-first (a
/// simple SJF scheduler that keeps feathers from queuing behind
/// bowling balls). Returns indices into `predictions`.
pub fn schedule_shortest_first(predictions: &[Prediction]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..predictions.len()).collect();
    order.sort_by(|&a, &b| {
        predictions[a]
            .metrics
            .elapsed_seconds
            .partial_cmp(&predictions[b].metrics.elapsed_seconds)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

/// Expected makespan if the given queries run one after another — used
/// by "can this workload finish in the batch window?" checks.
pub fn predicted_serial_makespan(predictions: &[Prediction]) -> f64 {
    vector::sum_iter(predictions.iter().map(|p| p.metrics.elapsed_seconds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_engine::PerfMetrics;

    fn prediction(elapsed: f64, confidence: f64) -> Prediction {
        let mut m = PerfMetrics::zero();
        m.elapsed_seconds = elapsed;
        Prediction {
            metrics: m,
            neighbor_indices: vec![0, 1, 2].into_iter().collect(),
            confidence_distance: confidence,
            max_kernel_similarity: 1.0,
        }
    }

    #[test]
    fn admits_short_queries_with_timeout() {
        let d = decide(&AdmissionPolicy::default(), &prediction(60.0, 0.1));
        match d {
            AdmissionDecision::Admit {
                kill_timeout_seconds,
            } => assert!((kill_timeout_seconds - 180.0).abs() < 1e-9),
            other => panic!("expected admit, got {other:?}"),
        }
    }

    #[test]
    fn rejects_predicted_monsters() {
        let d = decide(&AdmissionPolicy::default(), &prediction(3.0 * 3600.0, 0.1));
        assert!(matches!(d, AdmissionDecision::Reject { .. }));
    }

    #[test]
    fn flags_low_confidence_for_review() {
        let policy = AdmissionPolicy {
            confidence_distance_threshold: 1.0,
            ..AdmissionPolicy::default()
        };
        let d = decide(&policy, &prediction(10.0, 5.0));
        assert!(matches!(d, AdmissionDecision::ReviewRequired { .. }));
    }

    #[test]
    fn resource_limits_trip() {
        let policy = AdmissionPolicy {
            max_disk_ios: 100.0,
            ..AdmissionPolicy::default()
        };
        let mut p = prediction(10.0, 0.1);
        p.metrics.disk_ios = 500.0;
        assert!(matches!(
            decide(&policy, &p),
            AdmissionDecision::Reject { .. }
        ));
    }

    #[test]
    fn sjf_orders_by_predicted_time() {
        let preds = vec![
            prediction(50.0, 0.1),
            prediction(5.0, 0.1),
            prediction(500.0, 0.1),
        ];
        assert_eq!(schedule_shortest_first(&preds), vec![1, 0, 2]);
        assert!((predicted_serial_makespan(&preds) - 555.0).abs() < 1e-9);
    }
}
