//! System sizing and capacity planning (paper §I).
//!
//! "How big a system is needed to execute this new customer workload
//! with this time constraint?" — train one predictor per candidate
//! configuration (the vendor can do this before the customer buys
//! anything, Fig. 1), predict the customer workload on each, and pick
//! the smallest configuration that meets the constraint.

use crate::dataset::Dataset;
use crate::error::QppError;
use crate::predictor::{KccaPredictor, PredictorOptions};
use crate::workload_mgmt::predicted_serial_makespan;
use qpp_engine::SystemConfig;
use qpp_linalg::vector;
use serde::{Deserialize, Serialize};

/// Predicted behaviour of one workload on one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigEstimate {
    /// The candidate configuration.
    pub config: SystemConfig,
    /// Predicted total (serial) workload runtime, seconds.
    pub predicted_makespan: f64,
    /// Predicted peak single-query runtime, seconds.
    pub predicted_longest_query: f64,
    /// Predicted total disk I/Os across the workload.
    pub predicted_disk_ios: f64,
    /// Predicted total interconnect bytes.
    pub predicted_message_bytes: f64,
}

/// A sizing recommendation across candidate configurations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizingRecommendation {
    /// Per-configuration estimates, in candidate order.
    pub estimates: Vec<ConfigEstimate>,
    /// Index of the cheapest configuration meeting the deadline, if any
    /// (candidates are assumed ordered cheapest-first).
    pub recommended: Option<usize>,
}

/// Evaluates `workload` (queries only — never executed on the target!)
/// against each candidate `(training dataset, config)` pair and
/// recommends the first configuration whose predicted makespan meets
/// `deadline_seconds`.
///
/// `candidates` must be ordered cheapest-first. The training datasets
/// are the vendor's calibration runs on each configuration.
pub fn recommend(
    candidates: &[(Dataset, SystemConfig)],
    workload_plans: impl Fn(&SystemConfig) -> Dataset,
    deadline_seconds: f64,
    options: PredictorOptions,
) -> Result<SizingRecommendation, QppError> {
    let mut estimates = Vec::with_capacity(candidates.len());
    let mut recommended = None;
    for (i, (train, config)) in candidates.iter().enumerate() {
        let model = KccaPredictor::train(train, options)?;
        // Plans are config-specific: the optimizer re-plans per target.
        let workload = workload_plans(config);
        let preds = model.predict_dataset(&workload)?;
        let makespan = predicted_serial_makespan(&preds);
        let longest = vector::max_iter(0.0, preds.iter().map(|p| p.metrics.elapsed_seconds));
        let ios = vector::sum_iter(preds.iter().map(|p| p.metrics.disk_ios));
        let bytes = vector::sum_iter(preds.iter().map(|p| p.metrics.message_bytes));
        if recommended.is_none() && makespan <= deadline_seconds {
            recommended = Some(i);
        }
        estimates.push(ConfigEstimate {
            config: config.clone(),
            predicted_makespan: makespan,
            predicted_longest_query: longest,
            predicted_disk_ios: ios,
            predicted_message_bytes: bytes,
        });
    }
    Ok(SizingRecommendation {
        estimates,
        recommended,
    })
}

/// Capacity planning: given a predictor for the *current* system and a
/// predictor for an *upgraded* system, estimate the speedup of moving a
/// workload.
pub fn upgrade_speedup(
    current: &KccaPredictor,
    upgraded: &KccaPredictor,
    workload_on_current: &Dataset,
    workload_on_upgraded: &Dataset,
) -> Result<f64, QppError> {
    let now = predicted_serial_makespan(&current.predict_dataset(workload_on_current)?);
    let then = predicted_serial_makespan(&upgraded.predict_dataset(workload_on_upgraded)?);
    Ok(now / then.max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_workload::{Schema, WorkloadGenerator};

    fn dataset_on(config: &SystemConfig, n: usize, seed: u64) -> Dataset {
        let schema = Schema::tpcds(1.0);
        let mut g = WorkloadGenerator::tpcds(1.0, seed);
        Dataset::collect(&schema, g.generate(n), config, 2)
    }

    #[test]
    fn recommends_a_config_meeting_deadline() {
        let cfg_small = SystemConfig::neoview_32(4);
        let cfg_big = SystemConfig::neoview_32(32);
        let candidates = vec![
            (dataset_on(&cfg_small, 120, 41), cfg_small.clone()),
            (dataset_on(&cfg_big, 120, 41), cfg_big.clone()),
        ];
        let rec = recommend(
            &candidates,
            |cfg| dataset_on(cfg, 30, 43),
            f64::INFINITY,
            PredictorOptions::default(),
        )
        .unwrap();
        assert_eq!(rec.estimates.len(), 2);
        // Infinite deadline → cheapest config wins.
        assert_eq!(rec.recommended, Some(0));
        // The big system should be predicted faster overall.
        assert!(
            rec.estimates[1].predicted_makespan < rec.estimates[0].predicted_makespan,
            "32-cpu {} vs 4-cpu {}",
            rec.estimates[1].predicted_makespan,
            rec.estimates[0].predicted_makespan
        );
    }

    #[test]
    fn impossible_deadline_recommends_nothing() {
        let cfg = SystemConfig::neoview_4();
        let candidates = vec![(dataset_on(&cfg, 100, 45), cfg.clone())];
        let rec = recommend(
            &candidates,
            |c| dataset_on(c, 20, 47),
            1e-6,
            PredictorOptions::default(),
        )
        .unwrap();
        assert_eq!(rec.recommended, None);
    }

    #[test]
    fn upgrade_speedup_exceeds_one_for_bigger_box() {
        // Makespan sums are dominated by whichever heavy query lands in
        // the sample, so the assertion uses the median per-query
        // predicted speedup: with identical workload seeds, most
        // queries must be predicted faster on the 32-CPU box.
        let cfg_small = SystemConfig::neoview_32(4);
        let cfg_big = SystemConfig::neoview_32(32);
        let train_small = dataset_on(&cfg_small, 250, 49);
        let train_big = dataset_on(&cfg_big, 250, 49);
        let m_small = KccaPredictor::train(&train_small, PredictorOptions::default()).unwrap();
        let m_big = KccaPredictor::train(&train_big, PredictorOptions::default()).unwrap();
        let wl_small = dataset_on(&cfg_small, 40, 51);
        let wl_big = dataset_on(&cfg_big, 40, 51);
        let p_small = m_small.predict_dataset(&wl_small).unwrap();
        let p_big = m_big.predict_dataset(&wl_big).unwrap();
        let mut ratios: Vec<f64> = p_small
            .iter()
            .zip(p_big.iter())
            .map(|(s, b)| s.metrics.elapsed_seconds / b.metrics.elapsed_seconds.max(1e-9))
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = ratios[ratios.len() / 2];
        assert!(median > 1.0, "median per-query speedup {median}");
        // The aggregate helper stays exercised.
        let speedup = upgrade_speedup(&m_small, &m_big, &wl_small, &wl_big).unwrap();
        assert!(speedup.is_finite() && speedup > 0.0);
    }
}
