//! Feature-importance analysis (paper §VII-C.2, "Can our results
//! inform database development?").
//!
//! KCCA's projection dimensions do not correspond to raw features and
//! reversing the projection is computationally hard, so the paper
//! proposes an alternative: "we compared the similarity of each feature
//! of a test query with the corresponding features of its nearest
//! neighbors" and observed that "the counts and cardinalities of the
//! join operators contribute the most to our performance model".
//!
//! This module implements that analysis: for every test query, measure
//! per-feature agreement with its nearest neighbors (in standardized
//! feature space), then rank features by how much more tightly they
//! agree among neighbors than among random training pairs. A feature on
//! which neighbors agree far more than chance is one the projection is
//! actually keyed on.

use crate::dataset::Dataset;
use crate::error::QppError;
use crate::features::PlanFeatures;
use crate::predictor::KccaPredictor;
use qpp_linalg::stats::Standardizer;
use qpp_linalg::{vector, LinalgError};
use serde::{Deserialize, Serialize};

/// Importance score of one query-plan feature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureImportance {
    /// Feature name (see [`PlanFeatures::names`]).
    pub feature: String,
    /// Mean absolute standardized difference between test queries and
    /// their nearest neighbors on this feature.
    pub neighbor_disagreement: f64,
    /// Same statistic over random training pairs (the chance baseline).
    pub baseline_disagreement: f64,
    /// Importance: `1 - neighbor/baseline`. 1.0 = neighbors always agree
    /// exactly on this feature; ~0 = the feature plays no role in
    /// neighbor selection; negative = neighbors disagree *more* than
    /// chance.
    pub importance: f64,
}

/// Ranks plan features by how strongly the trained model keys on them.
///
/// `probe` supplies the test queries; their nearest neighbors are looked
/// up in the model's training projection.
pub fn rank_features(
    model: &KccaPredictor,
    train: &Dataset,
    probe: &Dataset,
) -> Result<Vec<FeatureImportance>, QppError> {
    if probe.is_empty() {
        return Err(LinalgError::Empty("feature importance probes").into());
    }
    let names = PlanFeatures::names();
    let train_x = train.feature_matrix(crate::features::FeatureKind::QueryPlan);
    let probe_x = probe.feature_matrix(crate::features::FeatureKind::QueryPlan);
    let scaler = Standardizer::fit(&train_x);
    let train_s = scaler.transform(&train_x);
    let probe_s = scaler.transform(&probe_x);
    let dims = train_s.cols();

    // Neighbor disagreement per feature.
    let mut neighbor = vec![0.0f64; dims];
    let mut pairs = 0usize;
    for (i, record) in probe.records.iter().enumerate() {
        let p = model.predict(&record.spec, &record.optimized.plan)?;
        for &n_idx in &p.neighbor_indices {
            for d in 0..dims {
                neighbor[d] += (probe_s[(i, d)] - train_s[(n_idx, d)]).abs();
            }
            pairs += 1;
        }
    }
    if pairs == 0 {
        return Err(LinalgError::Empty("feature importance probes").into());
    }
    for v in &mut neighbor {
        *v /= pairs as f64;
    }

    // Chance baseline: disagreement across a deterministic stride of
    // training pairs.
    let mut baseline = vec![0.0f64; dims];
    let mut base_pairs = 0usize;
    let n = train_s.rows();
    let stride = (n / 64).max(1);
    for i in (0..n).step_by(stride) {
        for j in (0..n).step_by(stride) {
            if i == j {
                continue;
            }
            for d in 0..dims {
                baseline[d] += (train_s[(i, d)] - train_s[(j, d)]).abs();
            }
            base_pairs += 1;
        }
    }
    for v in &mut baseline {
        *v /= base_pairs.max(1) as f64;
    }

    let mut out: Vec<FeatureImportance> = (0..dims)
        .map(|d| {
            let b = baseline[d];
            let importance = if b > 1e-9 {
                1.0 - neighbor[d] / b
            } else {
                0.0 // constant feature: carries no signal either way
            };
            FeatureImportance {
                feature: names[d].clone(),
                neighbor_disagreement: neighbor[d],
                baseline_disagreement: b,
                importance,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.importance
            .partial_cmp(&a.importance)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(out)
}

/// Sums importance over the join-operator features (counts and
/// cardinalities of nested-loop, hash and merge joins) vs. all others —
/// the paper's specific §VII-C.2 observation.
pub fn join_feature_share(ranking: &[FeatureImportance]) -> f64 {
    let is_join = |name: &str| {
        name.starts_with("nested_join")
            || name.starts_with("hash_join")
            || name.starts_with("merge_join")
            || name.starts_with("semi_join")
    };
    let total = vector::sum_iter(ranking.iter().map(|f| f.importance.max(0.0)));
    if total <= 0.0 {
        return 0.0;
    }
    vector::sum_iter(
        ranking
            .iter()
            .filter(|f| is_join(&f.feature))
            .map(|f| f.importance.max(0.0)),
    ) / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::collect_tpcds;
    use crate::predictor::PredictorOptions;
    use qpp_engine::SystemConfig;

    #[test]
    fn ranking_covers_all_features_and_is_sorted() {
        let cfg = SystemConfig::neoview_4();
        let train = collect_tpcds(250, 61, &cfg, 2);
        let probe = collect_tpcds(40, 62, &cfg, 2);
        let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
        let ranking = rank_features(&model, &train, &probe).unwrap();
        assert_eq!(ranking.len(), PlanFeatures::DIM);
        for w in ranking.windows(2) {
            assert!(w[0].importance >= w[1].importance);
        }
        // Neighbors must agree more than chance on at least some
        // features — otherwise the projection is not keying on anything.
        assert!(
            ranking[0].importance > 0.2,
            "top importance {}",
            ranking[0].importance
        );
    }

    #[test]
    fn join_share_is_a_fraction() {
        let cfg = SystemConfig::neoview_4();
        let train = collect_tpcds(200, 63, &cfg, 2);
        let probe = collect_tpcds(30, 64, &cfg, 2);
        let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
        let ranking = rank_features(&model, &train, &probe).unwrap();
        let share = join_feature_share(&ranking);
        assert!((0.0..=1.0).contains(&share), "share {share}");
    }

    #[test]
    fn empty_probe_rejected() {
        let cfg = SystemConfig::neoview_4();
        let train = collect_tpcds(60, 65, &cfg, 2);
        let probe = train.subset(&[]);
        let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
        assert!(rank_features(&model, &train, &probe).is_err());
    }
}
