//! A small MapReduce cluster simulator.
//!
//! The same role the Neoview simulator plays for queries: turn a
//! pre-execution [`JobSpec`](crate::JobSpec) into measured
//! [`JobOutcome`](crate::JobOutcome) metrics with the phenomena that
//! make prediction non-trivial — wave effects from task scheduling,
//! shuffle volume driven by the (hidden) data shape, sort-buffer spills,
//! and straggler skew pinned to the dataset.

use crate::job::{JobOutcome, JobSpec};
use serde::{Deserialize, Serialize};
use std::hash::{DefaultHasher, Hash, Hasher};

/// Cluster hardware/configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Cluster name (seeds per-cluster noise).
    pub name: String,
    /// Concurrent map slots.
    pub map_slots: u32,
    /// Concurrent reduce slots.
    pub reduce_slots: u32,
    /// Per-slot processing rate, bytes/second.
    pub slot_bytes_per_sec: f64,
    /// Aggregate shuffle bandwidth, bytes/second.
    pub shuffle_bytes_per_sec: f64,
    /// Sort buffer per task, bytes (overflow spills to disk).
    pub sort_buffer_bytes: f64,
    /// Fixed job setup/teardown overhead, seconds.
    pub startup_seconds: f64,
}

impl ClusterConfig {
    /// A 20-node commodity cluster (2 map + 1 reduce slot per node).
    pub fn small() -> Self {
        ClusterConfig {
            name: "mr-20".to_string(),
            map_slots: 40,
            reduce_slots: 20,
            slot_bytes_per_sec: 30.0e6,
            shuffle_bytes_per_sec: 400.0e6,
            sort_buffer_bytes: 100.0 * 1024.0 * 1024.0,
            startup_seconds: 12.0,
        }
    }

    /// A 100-node cluster.
    pub fn large() -> Self {
        ClusterConfig {
            name: "mr-100".to_string(),
            map_slots: 200,
            reduce_slots: 100,
            slot_bytes_per_sec: 30.0e6,
            shuffle_bytes_per_sec: 2.0e9,
            sort_buffer_bytes: 100.0 * 1024.0 * 1024.0,
            startup_seconds: 12.0,
        }
    }
}

/// Average record width assumed for record counters, bytes.
const RECORD_BYTES: f64 = 100.0;

/// Simulates running `job` on `cluster`. Deterministic per
/// (job, cluster).
pub fn run(job: &JobSpec, cluster: &ClusterConfig) -> JobOutcome {
    let (map_sel, shuffle_ratio, reduce_out_ratio, cpu_mult) = job.template.shape();
    let skew = job.skew();

    let input_records = job.input_bytes / RECORD_BYTES;
    let map_output_records = (input_records * map_sel * skew).max(1.0);
    let combine_ratio = if job.combiner { 0.25 } else { 1.0 };
    let shuffle_bytes = (job.input_bytes * shuffle_ratio * skew * combine_ratio).max(0.0);
    let reduce_input_records = (shuffle_bytes / RECORD_BYTES).max(0.0);
    let reduce_output_records = reduce_input_records * reduce_out_ratio;

    // Map phase: waves of tasks over the available slots; the last wave
    // may be mostly idle (the classic wave effect).
    let map_waves = (job.map_tasks as f64 / cluster.map_slots as f64)
        .ceil()
        .max(1.0);
    let bytes_per_map = job.input_bytes / job.map_tasks.max(1) as f64;
    let map_task_secs = bytes_per_map * cpu_mult / cluster.slot_bytes_per_sec;
    let map_secs = map_waves * map_task_secs;

    // Shuffle phase: network bound.
    let shuffle_secs = shuffle_bytes / cluster.shuffle_bytes_per_sec;

    // Reduce phase: waves again, plus a straggler penalty when key skew
    // concentrates data on few reducers.
    let reduce_waves = (job.reduce_tasks as f64 / cluster.reduce_slots as f64)
        .ceil()
        .max(1.0);
    let bytes_per_reduce = shuffle_bytes / job.reduce_tasks.max(1) as f64;
    let straggler = 1.0 + (skew - 1.0) * 0.5;
    let reduce_task_secs =
        (bytes_per_reduce + reduce_output_records * RECORD_BYTES) / cluster.slot_bytes_per_sec;
    let reduce_secs = reduce_waves * reduce_task_secs * straggler;

    // Spills: map-side sort buffers overflow when per-task map output
    // exceeds the buffer.
    let map_out_bytes_per_task =
        map_output_records * RECORD_BYTES * combine_ratio / job.map_tasks.max(1) as f64;
    let spill_factor = (map_out_bytes_per_task / cluster.sort_buffer_bytes).max(0.0);
    let spilled_records = if spill_factor > 1.0 {
        map_output_records * (1.0 - 1.0 / spill_factor)
    } else {
        0.0
    };
    let spill_secs = spilled_records * RECORD_BYTES / (cluster.slot_bytes_per_sec * 4.0);

    // Deterministic per-(job, cluster) run noise, ±5%.
    let noise = 1.0 + 0.05 * hashed_unit(job, cluster);
    let elapsed =
        (cluster.startup_seconds + map_secs + shuffle_secs + reduce_secs + spill_secs) * noise;

    let outcome = JobOutcome {
        elapsed_seconds: elapsed,
        map_output_records: map_output_records.round(),
        shuffle_bytes: shuffle_bytes.round(),
        reduce_input_records: reduce_input_records.round(),
        hdfs_bytes_read: job.input_bytes,
        spilled_records: spilled_records.round(),
    };
    debug_assert!(outcome.is_valid());
    outcome
}

fn hashed_unit(job: &JobSpec, cluster: &ClusterConfig) -> f64 {
    let mut h = DefaultHasher::new();
    job.id.hash(&mut h);
    cluster.name.hash(&mut h);
    (h.finish() >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobGenerator;

    #[test]
    fn outcomes_are_valid_and_deterministic() {
        let cluster = ClusterConfig::small();
        let mut g = JobGenerator::new(4);
        for j in g.generate(100) {
            let a = run(&j, &cluster);
            let b = run(&j, &cluster);
            assert!(a.is_valid());
            assert_eq!(a, b);
            assert!(a.elapsed_seconds >= cluster.startup_seconds);
            assert_eq!(a.hdfs_bytes_read, j.input_bytes);
        }
    }

    #[test]
    fn bigger_cluster_is_faster_on_big_jobs() {
        let small = ClusterConfig::small();
        let large = ClusterConfig::large();
        let mut g = JobGenerator::new(8);
        let mut faster = 0;
        let mut big_jobs = 0;
        for j in g.generate(200) {
            if j.input_bytes < 10e9 {
                continue;
            }
            big_jobs += 1;
            if run(&j, &large).elapsed_seconds < run(&j, &small).elapsed_seconds {
                faster += 1;
            }
        }
        assert!(big_jobs > 10);
        assert!(faster * 10 >= big_jobs * 9, "{faster}/{big_jobs}");
    }

    #[test]
    fn combiner_cuts_shuffle() {
        let mut g = JobGenerator::new(12);
        let mut j = g.generate_one();
        j.template = crate::JobTemplate::Aggregate;
        j.combiner = false;
        let without = run(&j, &ClusterConfig::small());
        j.combiner = true;
        let with = run(&j, &ClusterConfig::small());
        assert!(with.shuffle_bytes < without.shuffle_bytes);
    }

    #[test]
    fn grep_jobs_barely_shuffle() {
        let mut g = JobGenerator::new(21);
        let mut j = g.generate_one();
        j.template = crate::JobTemplate::Grep;
        let o = run(&j, &ClusterConfig::small());
        assert!(o.shuffle_bytes < j.input_bytes * 0.1);
    }
}
