//! MapReduce job performance prediction — the paper's §VIII vision.
//!
//! "Our long-term vision is to use domain-specific models, like the one
//! we built for database queries, to answer what-if questions about
//! workload performance on a variety of complex systems. Only the
//! feature vectors need to be customized for each system. We are
//! currently adapting our methodology to predict the performance of
//! map-reduce jobs in various hardware and software environments."
//!
//! This crate demonstrates exactly that: a small simulated MapReduce
//! cluster plus a job feature vector, reusing the *same* KCCA machinery
//! from [`qpp_ml`] untouched. The prediction targets are the MapReduce
//! analogue of the paper's six metrics: elapsed time, map output
//! records, shuffle bytes, reduce input records, HDFS bytes read, and
//! spilled records.

// Library code must degrade into typed errors, never panics.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cluster;
pub mod job;
pub mod predictor;

pub use cluster::ClusterConfig;
pub use job::{JobOutcome, JobSpec, JobTemplate};
pub use predictor::{JobPrediction, JobPredictor};
