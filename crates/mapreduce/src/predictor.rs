//! KCCA-based job performance prediction — the same machinery as the
//! database predictor, with only the feature vectors swapped, proving
//! the paper's §VIII claim.

use crate::cluster::{run, ClusterConfig};
use crate::job::{JobOutcome, JobSpec};
use qpp_core::error::{QppError, ResultExt};
use qpp_linalg::stats::Standardizer;
use qpp_linalg::{vector, LinalgError, Matrix};
use qpp_ml::{DistanceMetric, Kcca, KccaOptions, NearestNeighbors, NeighborWeighting};
use serde::{Deserialize, Serialize};

/// A prediction for one job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobPrediction {
    /// Predicted outcome metrics.
    pub outcome: JobOutcome,
    /// Mean neighbor distance (confidence; small = trustworthy).
    pub confidence_distance: f64,
}

/// KCCA predictor over MapReduce jobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobPredictor {
    scaler: Standardizer,
    kcca: Kcca,
    neighbors: NearestNeighbors,
    raw_outcomes: Matrix,
    k: usize,
}

impl JobPredictor {
    /// Runs `jobs` on `cluster` (calibration) and trains the model.
    pub fn train(
        jobs: &[JobSpec],
        cluster: &ClusterConfig,
        k: usize,
    ) -> Result<(Self, Vec<JobOutcome>), QppError> {
        if jobs.len() < 8 {
            return Err(LinalgError::Empty("job training set").into());
        }
        let outcomes: Vec<JobOutcome> = jobs.iter().map(|j| run(j, cluster)).collect();
        // Assemble all three training matrices directly into contiguous
        // storage — no per-row vectors at the boundary.
        let x_dim = jobs[0].features().len();
        let mut x_raw = Matrix::zeros(jobs.len(), x_dim);
        for (i, j) in jobs.iter().enumerate() {
            x_raw.row_mut(i).copy_from_slice(&j.features());
        }
        let scaler = Standardizer::fit(&x_raw);
        let x = scaler.transform(&x_raw);
        let y_dim = outcomes[0].to_vec().len();
        let mut y = Matrix::zeros(outcomes.len(), y_dim);
        let mut raw_outcomes = Matrix::zeros(outcomes.len(), y_dim);
        for (i, o) in outcomes.iter().enumerate() {
            let raw = o.to_vec();
            raw_outcomes.row_mut(i).copy_from_slice(&raw);
            for (dst, v) in y.row_mut(i).iter_mut().zip(raw.iter()) {
                *dst = (1.0 + v).ln();
            }
        }
        let kcca = Kcca::fit(x.view(), y.view(), KccaOptions::default()).ctx("fitting job kcca")?;
        let neighbors =
            NearestNeighbors::new(kcca.query_projection().clone(), DistanceMetric::Euclidean);
        let model = JobPredictor {
            scaler,
            kcca,
            neighbors,
            raw_outcomes,
            k,
        };
        Ok((model, outcomes))
    }

    /// Predicts a job's outcome from its spec alone.
    pub fn predict(&self, job: &JobSpec) -> Result<JobPrediction, QppError> {
        let scaled = self.scaler.transform_row(&job.features());
        let projected = self
            .kcca
            .project_query(&scaled)
            .ctx("projecting job features")?;
        let (combined, found) = self
            .neighbors
            .predict(
                &projected,
                &self.raw_outcomes,
                self.k,
                NeighborWeighting::Equal,
            )
            .ctx("combining job neighbors")?;
        // `predict` never returns an empty neighbor list on success.
        let confidence_distance =
            vector::sum_iter(found.iter().map(|n| n.distance)) / found.len() as f64;
        Ok(JobPrediction {
            outcome: JobOutcome {
                elapsed_seconds: combined[0],
                map_output_records: combined[1],
                shuffle_bytes: combined[2],
                reduce_input_records: combined[3],
                hdfs_bytes_read: combined[4],
                spilled_records: combined[5],
            },
            confidence_distance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobGenerator;
    use qpp_ml::predictive_risk;

    #[test]
    fn predicts_job_runtimes_well() {
        let cluster = ClusterConfig::small();
        let train_jobs = JobGenerator::new(1).generate(400);
        let test_jobs = JobGenerator::new(2).generate(80);
        let (model, _) = JobPredictor::train(&train_jobs, &cluster, 3).unwrap();
        let mut predicted = Vec::new();
        let mut actual = Vec::new();
        for j in &test_jobs {
            predicted.push(model.predict(j).unwrap().outcome.elapsed_seconds);
            actual.push(run(j, &cluster).elapsed_seconds);
        }
        let risk = predictive_risk(&predicted, &actual);
        assert!(risk > 0.6, "job elapsed risk {risk}");
    }

    #[test]
    fn predicts_shuffle_volume() {
        let cluster = ClusterConfig::large();
        let train_jobs = JobGenerator::new(5).generate(300);
        let test_jobs = JobGenerator::new(6).generate(60);
        let (model, _) = JobPredictor::train(&train_jobs, &cluster, 3).unwrap();
        let mut predicted = Vec::new();
        let mut actual = Vec::new();
        for j in &test_jobs {
            predicted.push(model.predict(j).unwrap().outcome.shuffle_bytes);
            actual.push(run(j, &cluster).shuffle_bytes);
        }
        let risk = predictive_risk(&predicted, &actual);
        assert!(risk > 0.7, "shuffle risk {risk}");
    }

    #[test]
    fn tiny_training_rejected() {
        let jobs = JobGenerator::new(7).generate(4);
        assert!(JobPredictor::train(&jobs, &ClusterConfig::small(), 3).is_err());
    }
}
