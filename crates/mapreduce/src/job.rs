//! MapReduce job specifications and workload generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::hash::{DefaultHasher, Hash, Hasher};

/// Broad job family (fixes the shape; constants vary per instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobTemplate {
    /// Log scan + filter: map-heavy, tiny shuffle (grep-style).
    Grep,
    /// Aggregation: moderate shuffle, high combine ratio (word-count).
    Aggregate,
    /// Join of two datasets: shuffle-heavy.
    Join,
    /// Global sort: shuffle ≈ input, reduce-heavy.
    Sort,
    /// Iterative ML step: CPU-heavy mappers, small output.
    MlStep,
}

impl JobTemplate {
    /// All templates.
    pub const ALL: [JobTemplate; 5] = [
        JobTemplate::Grep,
        JobTemplate::Aggregate,
        JobTemplate::Join,
        JobTemplate::Sort,
        JobTemplate::MlStep,
    ];

    /// (map selectivity, shuffle ratio, reduce output ratio, CPU cost
    /// per input byte multiplier) — the template's data-flow shape.
    pub(crate) fn shape(self) -> (f64, f64, f64, f64) {
        match self {
            JobTemplate::Grep => (0.02, 0.02, 1.0, 1.0),
            JobTemplate::Aggregate => (1.0, 0.15, 0.05, 1.5),
            JobTemplate::Join => (1.0, 1.05, 0.6, 2.0),
            JobTemplate::Sort => (1.0, 1.0, 1.0, 1.2),
            JobTemplate::MlStep => (1.0, 0.01, 0.01, 8.0),
        }
    }

    /// Template name.
    pub fn name(self) -> &'static str {
        match self {
            JobTemplate::Grep => "grep",
            JobTemplate::Aggregate => "aggregate",
            JobTemplate::Join => "join",
            JobTemplate::Sort => "sort",
            JobTemplate::MlStep => "ml_step",
        }
    }
}

/// A concrete job: template + input scale + configuration knobs. All
/// fields are known *before* the job runs — they are the feature
/// sources, exactly like the paper's pre-execution query plans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique id.
    pub id: u64,
    /// Job family.
    pub template: JobTemplate,
    /// Input size, bytes.
    pub input_bytes: f64,
    /// Number of map tasks.
    pub map_tasks: u32,
    /// Number of reduce tasks.
    pub reduce_tasks: u32,
    /// Whether a combiner runs after the map phase.
    pub combiner: bool,
}

/// Measured outcome of a simulated job — the performance vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Wall-clock time, seconds.
    pub elapsed_seconds: f64,
    /// Records emitted by mappers.
    pub map_output_records: f64,
    /// Bytes moved in the shuffle.
    pub shuffle_bytes: f64,
    /// Records entering reducers.
    pub reduce_input_records: f64,
    /// Bytes read from distributed storage.
    pub hdfs_bytes_read: f64,
    /// Records spilled to disk in sort buffers.
    pub spilled_records: f64,
}

impl JobOutcome {
    /// Metric count (vector dimensionality).
    pub const DIM: usize = 6;

    /// Canonical-order vector.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.elapsed_seconds,
            self.map_output_records,
            self.shuffle_bytes,
            self.reduce_input_records,
            self.hdfs_bytes_read,
            self.spilled_records,
        ]
    }

    /// All entries finite and non-negative.
    pub fn is_valid(&self) -> bool {
        self.to_vec().iter().all(|v| v.is_finite() && *v >= 0.0)
    }
}

impl JobSpec {
    /// Pre-execution feature vector: template one-hot, log input size,
    /// task counts, bytes per task, combiner flag — the MapReduce
    /// analogue of the paper's plan feature vector.
    pub fn features(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(JobTemplate::ALL.len() + 5);
        for t in JobTemplate::ALL {
            v.push(if t == self.template { 1.0 } else { 0.0 });
        }
        v.push((1.0 + self.input_bytes).ln());
        v.push(self.map_tasks as f64);
        v.push(self.reduce_tasks as f64);
        v.push((1.0 + self.input_bytes / self.map_tasks.max(1) as f64).ln());
        v.push(if self.combiner { 1.0 } else { 0.0 });
        v
    }

    /// Feature dimensionality.
    pub const FEATURE_DIM: usize = JobTemplate::ALL.len() + 5;

    /// Deterministic per-(template, knobs) data skew factor — the
    /// "world" of this domain, pinned to the job identity like the
    /// database generator's ground truth.
    pub(crate) fn skew(&self) -> f64 {
        let mut h = DefaultHasher::new();
        self.template.name().hash(&mut h);
        // Bucket input size so jobs over the same dataset share skew.
        ((self.input_bytes.log2() * 4.0) as u64).hash(&mut h);
        let u = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
        // Log-uniform in [1, ~3.2].
        10f64.powf(0.5 * u)
    }
}

/// Deterministic workload generator over the job templates.
#[derive(Debug)]
pub struct JobGenerator {
    rng: StdRng,
    next_id: u64,
}

impl JobGenerator {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        JobGenerator {
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// One random job: template uniform, input size log-uniform from
    /// 64 MiB to 1 TiB on a discrete grid, task counts from the usual
    /// block-size / cluster heuristics.
    pub fn generate_one(&mut self) -> JobSpec {
        let template = JobTemplate::ALL[self.rng.random_range(0..JobTemplate::ALL.len())];
        let grid: u32 = self.rng.random_range(0..15);
        let input_bytes = 64.0 * 1024.0 * 1024.0 * 2f64.powi(grid as i32);
        let block = 128.0 * 1024.0 * 1024.0;
        let map_tasks = (input_bytes / block).ceil().max(1.0) as u32;
        let reduce_tasks = self.rng.random_range(1..=64u32);
        let id = self.next_id;
        self.next_id += 1;
        JobSpec {
            id,
            template,
            input_bytes,
            map_tasks,
            reduce_tasks,
            combiner: self.rng.random_bool(0.5),
        }
    }

    /// A batch of jobs.
    pub fn generate(&mut self, n: usize) -> Vec<JobSpec> {
        (0..n).map(|_| self.generate_one()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_have_fixed_dim() {
        let mut g = JobGenerator::new(1);
        for _ in 0..50 {
            let j = g.generate_one();
            let f = j.features();
            assert_eq!(f.len(), JobSpec::FEATURE_DIM);
            assert!(f.iter().all(|v| v.is_finite()));
            // Exactly one template indicator set.
            let hot: f64 = f[..JobTemplate::ALL.len()].iter().sum();
            assert_eq!(hot, 1.0);
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = JobGenerator::new(9).generate(20);
        let b = JobGenerator::new(9).generate(20);
        assert_eq!(a, b);
    }

    #[test]
    fn skew_pinned_to_job_identity() {
        let mut g = JobGenerator::new(3);
        let j = g.generate_one();
        let mut j2 = j.clone();
        j2.id = 777;
        assert_eq!(j.skew(), j2.skew());
        assert!(j.skew() >= 1.0 && j.skew() < 3.5);
    }
}
