//! Deterministic parallel runtime for the qpp workspace.
//!
//! The contract every primitive here upholds: **results are bitwise
//! identical for any worker count.** That holds because the two things
//! that determine a floating-point result never depend on scheduling:
//!
//! 1. *Partitioning* — work is split into chunks by a pure function of
//!    the input size and a fixed per-call-site chunk size, never of the
//!    thread count or of which worker ran first.
//! 2. *Reduction order* — per-chunk results are merged strictly in
//!    chunk order. Workers race only over *which* chunk they claim
//!    next, never over where a result lands.
//!
//! Execution is dynamic (work-stealing): chunks are claimed from a
//! shared atomic counter, so a slow chunk does not idle the other
//! workers. The single-threaded path runs the *same* chunk schedule
//! serially, which is what makes `QPP_THREADS=1` bitwise equal to
//! `QPP_THREADS=64`.
//!
//! Worker threads are pooled and persistent (in the style of the
//! vendored `crossbeam` stand-in: a `Mutex`+`Condvar` MPMC queue), so a
//! caller in a hot loop — e.g. one incomplete-Cholesky pivot per
//! iteration — pays an enqueue, not a thread spawn. The calling thread
//! always participates in its own region, so a region never deadlocks
//! waiting for busy workers, including when regions nest.
//!
//! Thread count resolution, highest priority first: the innermost
//! [`with_threads`] scope on the current thread, then the
//! `QPP_THREADS` environment variable (read once per process), then
//! [`std::thread::available_parallelism`].

// Library code must degrade into typed errors, never panics.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::cell::Cell;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Hard cap on pooled worker threads (the calling thread is extra).
const MAX_WORKERS: usize = 64;

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("QPP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The worker count parallel regions started from this thread will use
/// (including the calling thread itself).
pub fn current_threads() -> usize {
    THREAD_OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(env_threads)
}

/// Runs `f` with the thread count pinned to `threads` (minimum 1) for
/// parallel regions started from the current thread.
///
/// This is the race-free way for tests to compare thread counts:
/// `QPP_THREADS` is process-global and read once, while this override
/// is scoped and thread-local. Nested calls restore the outer value on
/// exit, including on panic.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(threads.max(1))));
    let _restore = Restore(prev);
    f()
}

/// A contiguous slice of work items handed to a chunk body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Chunk ordinal, 0-based in input order.
    pub index: usize,
    /// Half-open item range `[start, end)` covered by this chunk.
    pub range: Range<usize>,
}

/// Runs `f` over fixed chunks of `0..n` and returns the per-chunk
/// results **in chunk order**.
///
/// Chunk `c` covers `c * chunk_size .. min((c + 1) * chunk_size, n)` —
/// a pure function of `n` and `chunk_size`, so both the partitioning
/// and the merge order are independent of the worker count and results
/// are bitwise reproducible.
// The merge loop's `expect` guards the filled-slot invariant (see the
// comment at the call site); silently skipping a slot is worse.
#[allow(clippy::expect_used)]
pub fn parallel_for_chunks<R, F>(n: usize, chunk_size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Chunk) -> R + Sync,
{
    let chunk_size = chunk_size.max(1);
    let chunks = n.div_ceil(chunk_size);
    if chunks == 0 {
        return Vec::new();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    let body = |c: usize| {
        let start = c * chunk_size;
        let end = (start + chunk_size).min(n);
        let out = f(Chunk {
            index: c,
            range: start..end,
        });
        *slots[c].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
    };
    run_chunks(chunks, &body);
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                // run_chunks returns only after every chunk completed,
                // so each slot is filled; silently dropping one would
                // corrupt the merge order, hence the loud invariant.
                // qpp-lint: allow(no-unwrap-lib)
                .expect("every chunk ran")
        })
        .collect()
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Items are processed in chunks of `chunk_size` (1 is fine for coarse
/// items like whole training folds); within a chunk the items run in
/// index order, and chunks merge in index order, so the output is
/// bitwise identical to a serial `items.iter().map(f).collect()`.
pub fn parallel_map<T, R, F>(items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let per_chunk = parallel_for_chunks(items.len(), chunk_size, |chunk| {
        items[chunk.range].iter().map(&f).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for part in per_chunk {
        out.extend(part);
    }
    out
}

/// Region bookkeeping guarded by [`Region::status`].
#[derive(Default)]
struct Status {
    /// Set by the owner once it stops claiming; helpers arriving after
    /// this point must not touch the region.
    closed: bool,
    /// Pooled workers currently inside the region. The owner cannot
    /// return while this is non-zero — that is what keeps the erased
    /// `data` pointer valid.
    active_helpers: usize,
    /// A helper's chunk body panicked; the owner re-raises.
    panicked: bool,
}

/// One parallel region: a type-erased chunk body plus the shared chunk
/// counter workers claim from.
struct Region {
    /// Points at the caller's monomorphized closure, which lives on the
    /// owner's stack for the whole region (see `run_chunks`).
    data: *const (),
    /// Trampoline that casts `data` back to its concrete type.
    call: unsafe fn(*const (), usize),
    chunks: usize,
    next: AtomicUsize,
    status: Mutex<Status>,
    done: Condvar,
}

// SAFETY: `data` is only dereferenced (a) by the owner, whose borrow is
// trivially alive, and (b) by helpers between a successful `enter` and
// the matching `leave`; the owner blocks in `run_chunks` until
// `active_helpers == 0` with `closed` set, so no helper dereference can
// outlive the pointee. All other fields are Sync by construction.
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

impl Region {
    /// Claims the next unclaimed chunk, if any.
    fn claim(&self) -> Option<usize> {
        // ordering: the counter only partitions chunk indices; chunk
        // data visibility is carried by the Acquire/Release handshake
        // on `Region::enter`/`leave`, not by this ticket.
        let c = self.next.fetch_add(1, Ordering::Relaxed);
        (c < self.chunks).then_some(c)
    }
}

unsafe fn call_chunk<F: Fn(usize) + Sync>(data: *const (), chunk: usize) {
    // SAFETY (caller): `data` was produced from `&F` in `run_chunks`
    // and the borrow is still alive (see `Region` safety notes).
    unsafe { (*(data as *const F))(chunk) }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(Pool::new)
}

/// Persistent worker pool; workers block on an MPMC queue of regions.
struct Pool {
    injector: crossbeam::channel::Sender<Arc<Region>>,
    queue: crossbeam::channel::Receiver<Arc<Region>>,
    spawned: AtomicUsize,
}

impl Pool {
    fn new() -> Pool {
        let (injector, queue) = crossbeam::channel::unbounded();
        Pool {
            injector,
            queue,
            spawned: AtomicUsize::new(0),
        }
    }

    /// Offers `region` to `helpers` workers, spawning threads lazily up
    /// to [`MAX_WORKERS`]. Stale offers (region already closed) are
    /// dropped by the workers, so over-offering is harmless.
    fn offer(&self, region: &Arc<Region>, helpers: usize) {
        self.ensure_workers(helpers);
        for _ in 0..helpers {
            // Send fails only if the receiver side is gone, which would
            // mean the static pool is being torn down at process exit.
            let _ = self.injector.send(Arc::clone(region));
        }
    }

    // Thread-spawn failure is unrecoverable resource exhaustion; the
    // lone `expect` below is the sanctioned loud failure for it.
    #[allow(clippy::expect_used)]
    fn ensure_workers(&self, want: usize) {
        let want = want.min(MAX_WORKERS);
        loop {
            // ordering: `spawned` is only a spawn-count reservation; the
            // channel handoff synchronizes the worker threads themselves.
            let have = self.spawned.load(Ordering::Relaxed);
            if have >= want {
                return;
            }
            // ordering: Relaxed CAS suffices — losing the race just
            // retries, and no data is published through this counter.
            if self
                .spawned
                .compare_exchange(have, have + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let rx = self.queue.clone();
            std::thread::Builder::new()
                .name(format!("qpp-par-{have}"))
                .spawn(move || {
                    while let Ok(region) = rx.recv() {
                        help(&region);
                    }
                })
                // Thread-spawn failure means the process is out of
                // resources; there is no useful degraded mode here.
                // qpp-lint: allow(no-unwrap-lib)
                .expect("spawn qpp-par worker");
        }
    }
}

/// A pooled worker's side of a region: enter, steal chunks until the
/// counter runs dry, leave.
/// Locks a region's status, recovering from poisoning: worker panics
/// are tracked explicitly via `Status::panicked`, so a poisoned mutex
/// carries no extra information and must not wedge the owner.
fn lock_status(region: &Region) -> MutexGuard<'_, Status> {
    region.status.lock().unwrap_or_else(PoisonError::into_inner)
}

fn help(region: &Region) {
    {
        let mut st = lock_status(region);
        if st.closed {
            return; // Stale offer; the owner already finished.
        }
        st.active_helpers += 1;
    }
    // The region is open and `active_helpers` now pins it open: the
    // owner cannot return until we decrement below.
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        while let Some(c) = region.claim() {
            // SAFETY: pinned open as above, so the pointee of
            // `region.data` is alive for the duration of this call.
            unsafe { (region.call)(region.data, c) };
        }
    }));
    let mut st = lock_status(region);
    if outcome.is_err() {
        st.panicked = true;
    }
    st.active_helpers -= 1;
    drop(st);
    region.done.notify_all();
}

/// Runs `body(0..chunks)` with work-stealing across the pool; the
/// calling thread participates and the call returns only when every
/// chunk has completed and no worker remains inside the region.
fn run_chunks<F: Fn(usize) + Sync>(chunks: usize, body: &F) {
    if chunks == 0 {
        return;
    }
    let helpers = current_threads()
        .saturating_sub(1)
        .min(chunks.saturating_sub(1))
        .min(MAX_WORKERS);
    if helpers == 0 {
        // Serial path: the identical chunk schedule, in order.
        for c in 0..chunks {
            body(c);
        }
        return;
    }
    let region = Arc::new(Region {
        data: body as *const F as *const (),
        call: call_chunk::<F>,
        chunks,
        next: AtomicUsize::new(0),
        status: Mutex::new(Status::default()),
        done: Condvar::new(),
    });
    pool().offer(&region, helpers);
    // The owner claims chunks like any worker. A panic in `body` is
    // caught so we still close the region and wait out the helpers
    // before unwinding past the frame their pointer aims at.
    let owner_outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        while let Some(c) = region.claim() {
            // SAFETY: the owner's own borrow of `body` is alive.
            unsafe { (region.call)(region.data, c) };
        }
    }));
    let mut st = lock_status(&region);
    st.closed = true;
    while st.active_helpers > 0 {
        st = region.done.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
    let helper_panicked = st.panicked;
    drop(st);
    if let Err(payload) = owner_outcome {
        panic::resume_unwind(payload);
    }
    if helper_panicked {
        // Re-raises a panic that already tore down a pooled worker —
        // swallowing it would return incomplete results as if valid.
        // qpp-lint: allow(no-unwrap-lib)
        panic!("qpp-par: a pooled worker panicked inside a parallel region");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_partition_the_input_exactly() {
        let chunks = parallel_for_chunks(23, 5, |c| c);
        assert_eq!(chunks.len(), 5);
        let mut covered = 0;
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.range.start, covered);
            covered = c.range.end;
        }
        assert_eq!(covered, 23);
        assert_eq!(chunks[4].range, 20..23);
    }

    #[test]
    fn map_preserves_order_and_values() {
        let items: Vec<u64> = (0..997).collect();
        for threads in [1, 2, 8] {
            let out = with_threads(threads, || parallel_map(&items, 7, |&x| x * x));
            assert_eq!(out.len(), items.len());
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, (i as u64) * (i as u64));
            }
        }
    }

    #[test]
    fn reductions_are_bitwise_identical_across_thread_counts() {
        // A sum whose value depends on association order: any deviation
        // in partitioning or merge order changes the low bits.
        let sum_with = |threads: usize| {
            with_threads(threads, || {
                parallel_for_chunks(10_000, 64, |chunk| {
                    chunk
                        .range
                        .map(|i| 1.0 / (1.0 + i as f64).sqrt())
                        .sum::<f64>()
                })
                .into_iter()
                .sum::<f64>()
            })
        };
        let baseline = sum_with(1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(baseline.to_bits(), sum_with(threads).to_bits());
        }
    }

    #[test]
    fn nested_regions_complete() {
        let out = with_threads(4, || {
            parallel_map(&[10usize, 20, 30], 1, |&rows| {
                parallel_for_chunks(rows, 4, |chunk| chunk.range.len())
                    .into_iter()
                    .sum::<usize>()
            })
        });
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = parallel_for_chunks(0, 8, |c| c.index);
        assert!(out.is_empty());
        let mapped: Vec<u8> = parallel_map(&[] as &[u8], 8, |&x| x);
        assert!(mapped.is_empty());
    }

    #[test]
    fn with_threads_restores_outer_value() {
        let outer = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(5, || assert_eq!(current_threads(), 5));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn panics_propagate_and_pool_survives() {
        let attempt = panic::catch_unwind(|| {
            with_threads(4, || {
                parallel_for_chunks(100, 1, |chunk| {
                    if chunk.index == 37 {
                        panic!("boom");
                    }
                    chunk.index
                })
            })
        });
        assert!(attempt.is_err());
        // The pool must remain usable after a task panic.
        let ok = with_threads(4, || parallel_for_chunks(16, 2, |c| c.range.len()));
        assert_eq!(ok.iter().sum::<usize>(), 16);
    }
}
