//! Criterion microbenchmarks for the reproduction's moving parts.
//!
//! Groups:
//! * `kernel`      — Gaussian kernel matrix construction vs N
//! * `kcca_train`  — KCCA training vs N (paper §VII-C.4: cubic-ish
//!   growth, "training takes minutes to hours")
//! * `predict`     — single-query prediction latency (paper: < 1 s)
//! * `knn`         — neighbor search, Euclidean vs cosine
//! * `engine`      — optimize+execute simulation throughput
//! * `regression`  — OLS baseline fit
//! * `ablation`    — ICD rank cap, regularization, kernel fraction,
//!   raw vs geometric neighbor averaging, plan vs SQL features (the
//!   design choices DESIGN.md calls out)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpp_core::pipeline::collect_tpcds;
use qpp_core::{FeatureKind, KccaPredictor, PredictorOptions};
use qpp_engine::{execute, optimize, Catalog, SystemConfig};
use qpp_linalg::Matrix;
use qpp_ml::{
    DistanceMetric, GaussianKernel, Kcca, KccaOptions, MetricRegression, NearestNeighbors,
};
use qpp_workload::WorkloadGenerator;
use std::hint::black_box;
use std::time::Duration;

fn quick(c: &mut Criterion) -> &mut Criterion {
    c
}

fn feature_data(n: usize) -> (Matrix, Matrix) {
    let cfg = SystemConfig::neoview_4();
    let ds = collect_tpcds(n, 7, &cfg, 2);
    (
        ds.feature_matrix(FeatureKind::QueryPlan),
        ds.kernel_performance_matrix(),
    )
}

fn bench_kernel(c: &mut Criterion) {
    let mut g = quick(c).benchmark_group("kernel");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for n in [128usize, 256, 512] {
        let (x, _) = feature_data(n);
        let kern = GaussianKernel::fit(x.view(), 0.25);
        g.bench_with_input(BenchmarkId::new("matrix", n), &n, |b, _| {
            b.iter(|| black_box(kern.matrix(x.view())))
        });
    }
    g.finish();
}

fn bench_kcca_train(c: &mut Criterion) {
    let mut g = quick(c).benchmark_group("kcca_train");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [128usize, 256, 512] {
        let (x, y) = feature_data(n);
        g.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| black_box(Kcca::fit(x.view(), y.view(), KccaOptions::default()).unwrap()))
        });
    }
    g.finish();
}

fn bench_predict(c: &mut Criterion) {
    let cfg = SystemConfig::neoview_4();
    let train = collect_tpcds(512, 9, &cfg, 2);
    let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
    let probe = &train.records[0];
    let mut g = quick(c).benchmark_group("predict");
    g.sample_size(30).measurement_time(Duration::from_secs(2));
    g.bench_function("single_query", |b| {
        b.iter(|| black_box(model.predict(&probe.spec, &probe.optimized.plan).unwrap()))
    });
    g.finish();
}

fn bench_knn(c: &mut Criterion) {
    let (x, _) = feature_data(512);
    let probe = x.row(0).to_vec();
    let mut g = quick(c).benchmark_group("knn");
    g.sample_size(30).measurement_time(Duration::from_secs(2));
    for (label, metric) in [
        ("euclidean", DistanceMetric::Euclidean),
        ("cosine", DistanceMetric::Cosine),
    ] {
        let nn = NearestNeighbors::new(x.clone(), metric);
        g.bench_function(label, |b| b.iter(|| black_box(nn.query(&probe, 3))));
    }
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let cfg = SystemConfig::neoview_4();
    let mut wg = WorkloadGenerator::tpcds(1.0, 11);
    let queries = wg.generate(64);
    let schema = wg.schema().clone();
    let catalog = Catalog::new(schema.clone());
    let mut g = quick(c).benchmark_group("engine");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function("optimize", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(optimize(q, &catalog, &cfg));
            }
        })
    });
    let optimized: Vec<_> = queries
        .iter()
        .map(|q| optimize(q, &catalog, &cfg))
        .collect();
    g.bench_function("execute", |b| {
        b.iter(|| {
            for (q, o) in queries.iter().zip(optimized.iter()) {
                black_box(execute(q, o, &schema, &cfg));
            }
        })
    });
    g.finish();
}

fn bench_regression(c: &mut Criterion) {
    let cfg = SystemConfig::neoview_4();
    let ds = collect_tpcds(512, 13, &cfg, 2);
    let x = ds.feature_matrix(FeatureKind::QueryPlan);
    let y = ds.performance_matrix();
    let mut g = quick(c).benchmark_group("regression");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("ols_fit_512", |b| {
        b.iter(|| black_box(MetricRegression::fit(&x, &y).unwrap()))
    });
    g.finish();
}

fn bench_ablation(c: &mut Criterion) {
    let cfg = SystemConfig::neoview_4();
    let train = collect_tpcds(400, 15, &cfg, 2);
    let test = collect_tpcds(64, 16, &cfg, 2);
    let mut g = quick(c).benchmark_group("ablation");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let variants: Vec<(&str, PredictorOptions)> = vec![
        ("paper_defaults", PredictorOptions::default()),
        ("icd_rank_64", {
            let mut o = PredictorOptions::default();
            o.kcca.max_rank = 64;
            o
        }),
        ("regularization_1e-1", {
            let mut o = PredictorOptions::default();
            o.kcca.regularization = 1e-1;
            o
        }),
        ("kernel_fraction_1.0", {
            let mut o = PredictorOptions::default();
            o.kcca.x_kernel_fraction = 1.0;
            o.kcca.y_kernel_fraction = 2.0;
            o
        }),
        (
            "geometric_average",
            PredictorOptions {
                log_space_average: true,
                ..PredictorOptions::default()
            },
        ),
        (
            "sql_text_features",
            PredictorOptions {
                feature_kind: FeatureKind::SqlText,
                ..PredictorOptions::default()
            },
        ),
    ];
    for (label, opts) in variants {
        g.bench_function(label, |b| {
            b.iter(|| {
                let model = KccaPredictor::train(&train, opts).unwrap();
                black_box(model.predict_dataset(&test).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_kernel,
    bench_kcca_train,
    bench_predict,
    bench_knn,
    bench_engine,
    bench_regression,
    bench_ablation
);
criterion_main!(benches);
