//! One function per paper table/figure.
//!
//! All experiments run against the simulated Neoview testbed with fixed
//! seeds, using the paper's training/test pool sizes:
//!
//! * Experiment 1 (Figs. 10–12): 1027 training queries (767 feathers,
//!   230 golf balls, 30 bowling balls), 61 test queries (45/7/9).
//! * Experiment 2 (Fig. 13): 30 training queries of each category.
//! * Experiment 3 (Fig. 14): two-step prediction, same pools as Exp 1.
//! * Experiment 4 (Fig. 15): customer-schema mini-feathers.
//! * Fig. 16: 4/8/16/32-CPU configurations of the 32-node system,
//!   197 training / 83 test queries rerun per configuration.
//! * Fig. 17: optimizer cost vs. actual elapsed time.
//!
//! Six of the nine test bowling balls are re-executed on a drifted
//! configuration before testing, recreating the paper's mid-study OS
//! upgrade ("the accuracy of our predictions for the six bowling balls
//! we then ran and added was not as good").

use crate::report::{hms, risk_cell, Report};
use qpp_core::baselines::{OptimizerCostModel, PqrPredictor, RegressionPredictor};
use qpp_core::categories::summarize_pools;
use qpp_core::feature_importance::{join_feature_share, rank_features};
use qpp_core::pipeline::{collect_tpcds, evaluate, Evaluation};
use qpp_core::{
    Dataset, FeatureKind, KccaPredictor, PredictorOptions, QueryCategory, TwoStepPredictor,
};
use qpp_engine::{execute, optimize, Catalog, PerfMetrics, SystemConfig};
use qpp_ml::metrics::predictive_risk_dropping_outliers;
use qpp_ml::{fraction_within, predictive_risk, DistanceMetric, NeighborWeighting};
use qpp_workload::customer::{customer_schema, customer_suite};
use qpp_workload::WorkloadGenerator;

/// Master seed for all experiments (fixed for reproducibility).
pub const SEED: u64 = 20090401;

/// Size of the generated master population the pools are drawn from.
pub const POPULATION: usize = 20000;

/// Shared state across experiments.
pub struct Context {
    /// The 4-node research system.
    pub config: SystemConfig,
    /// Master population executed on the 4-node system.
    pub all: Dataset,
    /// Experiment 1 training pool (767/230/30).
    pub train: Dataset,
    /// Experiment 1 test pool (45/7/9, with 6 post-"upgrade" bowling
    /// balls).
    pub test: Dataset,
}

/// Key numbers an experiment reports (used by the binary's summary and
/// the integration tests).
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id, e.g. `fig10`.
    pub id: &'static str,
    /// Headline measured value (meaning depends on the experiment).
    pub headline: f64,
    /// Secondary values by name.
    pub values: Vec<(&'static str, f64)>,
}

impl Context {
    /// Collects the master population and draws the Experiment 1 pools.
    pub fn build() -> Context {
        Self::build_sized(POPULATION)
    }

    /// Like [`Context::build`] with a custom population size (tests use
    /// a smaller population; pool sizes scale down accordingly).
    pub fn build_sized(population: usize) -> Context {
        let config = SystemConfig::neoview_4();
        let all = collect_tpcds(population, SEED, &config, 4);
        let scale = (population as f64 / POPULATION as f64).min(1.0);
        let n = |x: usize| ((x as f64 * scale).round() as usize).max(1);
        let pool_seed = std::env::var("QPP_POOL_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(23u64);
        let (train_idx, test_idx) = all.sample_pools(
            &[
                (QueryCategory::Feather, n(767)),
                (QueryCategory::GolfBall, n(230)),
                (QueryCategory::BowlingBall, n(30)),
            ],
            &[
                (QueryCategory::Feather, n(45)),
                (QueryCategory::GolfBall, n(7)),
                (QueryCategory::BowlingBall, n(9)),
            ],
            pool_seed,
        );
        let train = all.subset(&train_idx);
        let mut test = all.subset(&test_idx);

        // Recreate the paper's mid-study OS upgrade: six of the test
        // bowling balls were measured after the system drifted.
        let drift_cfg = config.clone().with_drift(1.4);
        let catalog = Catalog::new(all.schema.clone());
        let mut replaced = 0;
        for r in test.records.iter_mut() {
            if r.category != QueryCategory::BowlingBall || replaced >= 6 {
                continue;
            }
            let opt = optimize(&r.spec, &catalog, &drift_cfg);
            let out = execute(&r.spec, &opt, &all.schema, &drift_cfg);
            r.metrics = out.metrics;
            r.optimized = opt;
            replaced += 1;
        }
        Context {
            config,
            all,
            train,
            test,
        }
    }
}

fn scatter_summary(report: &mut Report, predicted: &[f64], actual: &[f64], unit: &str) {
    let mut pairs: Vec<(f64, f64)> = predicted
        .iter()
        .zip(actual.iter())
        .map(|(&p, &a)| (p, a))
        .collect();
    pairs.sort_by(|x, y| {
        let rx = ratio(x.0, x.1);
        let ry = ratio(y.0, y.1);
        ry.partial_cmp(&rx).unwrap_or(std::cmp::Ordering::Equal)
    });
    let rows: Vec<Vec<String>> = pairs
        .iter()
        .take(5)
        .map(|(p, a)| {
            vec![
                format!("{p:.2} {unit}"),
                format!("{a:.2} {unit}"),
                format!("{:.1}x", ratio(*p, *a)),
            ]
        })
        .collect();
    report.para("Widest misses (the plotted outliers):");
    report.table(&["predicted", "actual", "off by"], &rows);
}

fn ratio(p: f64, a: f64) -> f64 {
    let p = p.abs().max(1e-9);
    let a = a.abs().max(1e-9);
    (p / a).max(a / p)
}

/// Fig. 2 — query pools by category with elapsed-time statistics.
pub fn fig2(ctx: &Context, report: &mut Report) -> ExperimentResult {
    report.heading(
        2,
        "Fig. 2 — query pools (feather / golf ball / bowling ball)",
    );
    report.para(&format!(
        "Pools drawn from {} generated TPC-DS-style queries executed in \
         single-query mode on the 4-processor system. Paper: feathers \
         < 3 min, golf balls 3–30 min, bowling balls 30 min – 2 h; \
         wrecking balls beyond 2 h are excluded.",
        ctx.all.len()
    ));
    let pools = summarize_pools(&ctx.all.elapsed());
    let rows: Vec<Vec<String>> = pools
        .iter()
        .map(|p| {
            vec![
                p.category.name().to_string(),
                p.instances.to_string(),
                hms(p.mean_elapsed),
                hms(p.min_elapsed),
                hms(p.max_elapsed),
            ]
        })
        .collect();
    report.table(
        &[
            "query type",
            "number of instances",
            "mean",
            "minimum",
            "maximum",
        ],
        &rows,
    );
    ExperimentResult {
        id: "fig2",
        headline: pools[0].instances as f64,
        values: vec![
            ("golf_instances", pools[1].instances as f64),
            ("bowling_instances", pools[2].instances as f64),
        ],
    }
}

/// Figs. 3 & 4 — the linear-regression baseline on the training set.
pub fn fig3_fig4(ctx: &Context, report: &mut Report) -> ExperimentResult {
    let model =
        RegressionPredictor::train(&ctx.train, FeatureKind::QueryPlan).expect("regression trains");
    let preds = model.predict_dataset(&ctx.train).expect("predicts");
    let actual = ctx.train.performance_matrix();

    let elapsed_pred: Vec<f64> = (0..preds.rows()).map(|i| preds[(i, 0)]).collect();
    let elapsed_act: Vec<f64> = actual.col(0);
    let used_pred: Vec<f64> = (0..preds.rows()).map(|i| preds[(i, 5)]).collect();
    let used_act: Vec<f64> = actual.col(5);

    let neg_elapsed = elapsed_pred.iter().filter(|v| **v < 0.0).count();
    let neg_used = used_pred.iter().filter(|v| **v < 0.0).count();
    let min_used = used_pred.iter().cloned().fold(f64::INFINITY, f64::min);

    report.heading(2, "Figs. 3 & 4 — linear regression baseline (training set)");
    report.para(&format!(
        "Per-metric OLS over the raw plan features, evaluated on the {} \
         training queries, as in the paper's Figs. 3–4. Paper: \
         predictions orders of magnitude off; 76 negative elapsed-time \
         predictions (e.g. −82 s); 105 negative records-used predictions \
         reaching −1.8 M records.",
        ctx.train.len()
    ));
    report.table(
        &[
            "metric",
            "in-sample predictive risk",
            "negative predictions",
            "most negative",
        ],
        &[
            vec![
                "elapsed time".into(),
                format!("{:.3}", predictive_risk(&elapsed_pred, &elapsed_act)),
                neg_elapsed.to_string(),
                format!(
                    "{:.1} s",
                    elapsed_pred.iter().cloned().fold(f64::INFINITY, f64::min)
                ),
            ],
            vec![
                "records used".into(),
                format!("{:.3}", predictive_risk(&used_pred, &used_act)),
                neg_used.to_string(),
                format!("{:.2e} records", min_used),
            ],
        ],
    );
    scatter_summary(report, &elapsed_pred, &elapsed_act, "s");
    ExperimentResult {
        id: "fig3",
        headline: neg_elapsed as f64,
        values: vec![
            ("neg_records_used", neg_used as f64),
            ("elapsed_risk", predictive_risk(&elapsed_pred, &elapsed_act)),
        ],
    }
}

/// Fig. 8 — KCCA over SQL-text features.
pub fn fig8(ctx: &Context, report: &mut Report) -> ExperimentResult {
    let opts = PredictorOptions {
        feature_kind: FeatureKind::SqlText,
        ..PredictorOptions::default()
    };
    let model = KccaPredictor::train(&ctx.train, opts).expect("trains");
    let preds = model.predict_dataset(&ctx.test).expect("predicts");
    let eval = evaluate(&preds, &ctx.test);
    let risk = eval.predictive_risk[0].unwrap_or(f64::NAN);
    report.heading(2, "Fig. 8 — KCCA with SQL-text features");
    report.para(&format!(
        "Nine SQL-statement statistics as the query feature vector. \
         Paper: predictive risk −0.10 for elapsed time — 'two textually \
         similar queries may have dramatically different performance'. \
         Measured elapsed-time risk: **{risk:.3}** (within 20%: {:.0}%).",
        eval.elapsed_within_20pct * 100.0
    ));
    let p: Vec<f64> = preds.iter().map(|x| x.metrics.elapsed_seconds).collect();
    scatter_summary(report, &p, &ctx.test.elapsed(), "s");
    ExperimentResult {
        id: "fig8",
        headline: risk,
        values: vec![("within20", eval.elapsed_within_20pct)],
    }
}

fn risks_row(label: &str, eval: &Evaluation) -> Vec<String> {
    let mut row = vec![label.to_string()];
    row.extend(eval.predictive_risk.iter().map(|r| risk_cell(*r)));
    row
}

fn metric_headers() -> Vec<&'static str> {
    let mut h = vec!["variant"];
    h.extend(PerfMetrics::NAMES);
    h
}

/// Table I — Euclidean vs. cosine neighbor distance.
pub fn table1(ctx: &Context, report: &mut Report) -> ExperimentResult {
    let variants = [
        ("Euclidean distance", DistanceMetric::Euclidean),
        ("cosine distance", DistanceMetric::Cosine),
    ];
    // Variants are independent: train/evaluate in parallel, assemble
    // the report rows serially in variant order.
    let evals = qpp_par::parallel_map(&variants, 1, |&(_, metric)| {
        let opts = PredictorOptions {
            metric,
            ..PredictorOptions::default()
        };
        let model = KccaPredictor::train(&ctx.train, opts).expect("trains");
        evaluate(
            &model.predict_dataset(&ctx.test).expect("predicts"),
            &ctx.test,
        )
    });
    let mut rows = Vec::new();
    let mut euclid_risk = 0.0;
    let mut cosine_risk = 0.0;
    for ((label, metric), eval) in variants.iter().zip(evals.iter()) {
        if *metric == DistanceMetric::Euclidean {
            euclid_risk = eval.predictive_risk[0].unwrap_or(f64::NAN);
        } else {
            cosine_risk = eval.predictive_risk[0].unwrap_or(f64::NAN);
        }
        rows.push(risks_row(label, eval));
    }
    report.heading(2, "Table I — distance metric for nearest neighbors");
    report.para(
        "Predictive risk per metric. Paper: Euclidean distance beats \
         cosine distance on every metric.",
    );
    report.table(&metric_headers(), &rows);
    ExperimentResult {
        id: "table1",
        headline: euclid_risk - cosine_risk,
        values: vec![("euclid", euclid_risk), ("cosine", cosine_risk)],
    }
}

/// Table II — number of neighbors k ∈ 3..7.
pub fn table2(ctx: &Context, report: &mut Report) -> ExperimentResult {
    let ks: Vec<usize> = (3..=7).collect();
    let evals = qpp_par::parallel_map(&ks, 1, |&k| {
        let opts = PredictorOptions {
            neighbors: k,
            ..PredictorOptions::default()
        };
        let model = KccaPredictor::train(&ctx.train, opts).expect("trains");
        evaluate(
            &model.predict_dataset(&ctx.test).expect("predicts"),
            &ctx.test,
        )
    });
    let mut rows = Vec::new();
    let mut risks = Vec::new();
    for (k, eval) in ks.iter().zip(evals.iter()) {
        risks.push(eval.predictive_risk[0].unwrap_or(f64::NAN));
        rows.push(risks_row(&format!("{k}NN"), eval));
    }
    report.heading(2, "Table II — number of neighbors");
    report.para(
        "Paper: negligible difference between k = 3..7; k = 3 chosen. \
         Disk I/O risk is Null/poor because most queries do zero disk \
         I/O on this configuration.",
    );
    report.table(&metric_headers(), &rows);
    let spread = risks.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - risks.iter().cloned().fold(f64::INFINITY, f64::min);
    ExperimentResult {
        id: "table2",
        headline: spread,
        values: risks
            .into_iter()
            .enumerate()
            .map(|(i, r)| (["k3", "k4", "k5", "k6", "k7"][i], r))
            .collect(),
    }
}

/// Table III — neighbor weighting schemes.
pub fn table3(ctx: &Context, report: &mut Report) -> ExperimentResult {
    let variants = [
        ("equal", NeighborWeighting::Equal),
        ("3:2:1 ratio", NeighborWeighting::RankRatio),
        ("distance ratio", NeighborWeighting::InverseDistance),
    ];
    let evals = qpp_par::parallel_map(&variants, 1, |&(_, weighting)| {
        let opts = PredictorOptions {
            weighting,
            ..PredictorOptions::default()
        };
        let model = KccaPredictor::train(&ctx.train, opts).expect("trains");
        evaluate(
            &model.predict_dataset(&ctx.test).expect("predicts"),
            &ctx.test,
        )
    });
    let mut rows = Vec::new();
    let mut risks = Vec::new();
    for ((label, _), eval) in variants.iter().zip(evals.iter()) {
        risks.push(eval.predictive_risk[0].unwrap_or(f64::NAN));
        rows.push(risks_row(label, eval));
    }
    report.heading(2, "Table III — neighbor weighting");
    report.para(
        "Paper: no weighting scheme wins consistently across metrics; \
         equal weighting chosen for simplicity.",
    );
    report.table(&metric_headers(), &rows);
    let spread = risks.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - risks.iter().cloned().fold(f64::INFINITY, f64::min);
    ExperimentResult {
        id: "table3",
        headline: spread,
        values: vec![
            ("equal", risks[0]),
            ("rank_ratio", risks[1]),
            ("inverse_distance", risks[2]),
        ],
    }
}

/// Experiment 1 (Figs. 10–12) — the headline one-model KCCA result.
pub fn experiment1(ctx: &Context, report: &mut Report) -> ExperimentResult {
    let model = KccaPredictor::train(&ctx.train, PredictorOptions::default()).expect("trains");
    let preds = model.predict_dataset(&ctx.test).expect("predicts");
    let eval = evaluate(&preds, &ctx.test);

    let pred_elapsed: Vec<f64> = preds.iter().map(|p| p.metrics.elapsed_seconds).collect();
    let actual_elapsed = ctx.test.elapsed();
    let risk = eval.predictive_risk[0].unwrap_or(f64::NAN);
    let risk_minus_outlier = predictive_risk_dropping_outliers(&pred_elapsed, &actual_elapsed, 1);

    report.heading(2, "Experiment 1 (Figs. 10–12) — one-model KCCA");
    report.para(&format!(
        "Training: {} queries (767 feathers / 230 golf balls / 30 bowling \
         balls at full scale); test: {} queries (45/7/9), six of the test \
         bowling balls executed after a simulated system upgrade. Paper: \
         elapsed-time risk 0.55 (0.61 after dropping the worst outlier); \
         records-used risk 0.98; message-count risk 0.35; elapsed time \
         within 20% of actual for at least 85% of test queries.",
        ctx.train.len(),
        ctx.test.len()
    ));
    report.table(&metric_headers(), &[risks_row("one-model KCCA", &eval)]);
    report.para(&format!(
        "Elapsed-time risk dropping the worst outlier: **{risk_minus_outlier:.3}**. \
         Elapsed within 20% of actual: **{:.0}%**; within 2x: **{:.0}%**.",
        eval.elapsed_within_20pct * 100.0,
        eval.elapsed_within_2x * 100.0
    ));
    scatter_summary(report, &pred_elapsed, &actual_elapsed, "s");
    let mut values = vec![
        ("risk_no_outlier", risk_minus_outlier),
        ("within20", eval.elapsed_within_20pct),
        ("within2x", eval.elapsed_within_2x),
    ];
    values.push((
        "records_used_risk",
        eval.predictive_risk[5].unwrap_or(f64::NAN),
    ));
    values.push((
        "message_count_risk",
        eval.predictive_risk[2].unwrap_or(f64::NAN),
    ));
    ExperimentResult {
        id: "fig10",
        headline: risk,
        values,
    }
}

/// Experiment 2 (Fig. 13) — training with only 30 queries per category.
pub fn experiment2(ctx: &Context, report: &mut Report) -> ExperimentResult {
    let scale = (ctx.all.len() as f64 / POPULATION as f64).min(1.0);
    let n = ((30.0 * scale).round() as usize).max(1);
    let (train_idx, _) = ctx.all.sample_pools(
        &[
            (QueryCategory::Feather, n),
            (QueryCategory::GolfBall, n),
            (QueryCategory::BowlingBall, n),
        ],
        &[],
        99,
    );
    let small_train = ctx.all.subset(&train_idx);
    let mut opts = PredictorOptions::default();
    opts.kcca.max_rank = opts.kcca.max_rank.min(small_train.len());
    let model = KccaPredictor::train(&small_train, opts).expect("trains");
    let preds = model.predict_dataset(&ctx.test).expect("predicts");
    let eval = evaluate(&preds, &ctx.test);
    let risk = eval.predictive_risk[0].unwrap_or(f64::NAN);
    report.heading(2, "Experiment 2 (Fig. 13) — balanced 30/30/30 training set");
    report.para(&format!(
        "Training shrunk to {} queries ({} per category). Paper: \
         noticeably less accurate than Experiment 1 — 'more data in the \
         training set is always better'. Measured elapsed-time risk: \
         **{risk:.3}** (within 20%: {:.0}%).",
        small_train.len(),
        n,
        eval.elapsed_within_20pct * 100.0
    ));
    let p: Vec<f64> = preds.iter().map(|x| x.metrics.elapsed_seconds).collect();
    scatter_summary(report, &p, &ctx.test.elapsed(), "s");
    ExperimentResult {
        id: "fig13",
        headline: risk,
        values: vec![("within20", eval.elapsed_within_20pct)],
    }
}

/// Experiment 3 (Fig. 14) — two-step prediction.
pub fn experiment3(ctx: &Context, report: &mut Report) -> ExperimentResult {
    let model = TwoStepPredictor::train(&ctx.train, PredictorOptions::default()).expect("trains");
    let preds = model.predict_dataset(&ctx.test).expect("predicts");
    let eval = evaluate(&preds, &ctx.test);
    let risk = eval.predictive_risk[0].unwrap_or(f64::NAN);
    report.heading(2, "Experiment 3 (Fig. 14) — two-step prediction");
    report.para(&format!(
        "Step 1 classifies the query as feather / golf ball / bowling \
         ball by neighbor vote; step 2 predicts with a category-specific \
         model. Paper: risk 0.82, fewer outliers than Experiment 1 \
         (0.55); occasional losses when a query sits near a category \
         boundary. Measured elapsed-time risk: **{risk:.3}** (within \
         20%: {:.0}%).",
        eval.elapsed_within_20pct * 100.0
    ));
    let p: Vec<f64> = preds.iter().map(|x| x.metrics.elapsed_seconds).collect();
    scatter_summary(report, &p, &ctx.test.elapsed(), "s");
    ExperimentResult {
        id: "fig14",
        headline: risk,
        values: vec![("within20", eval.elapsed_within_20pct)],
    }
}

/// Experiment 4 (Fig. 15) — transfer to a different schema.
pub fn experiment4(ctx: &Context, report: &mut Report) -> ExperimentResult {
    // 45 short-running customer queries on the same 4-node system.
    let mut gen = WorkloadGenerator::new(customer_schema(1.0), customer_suite(), SEED + 4);
    let queries = gen.generate(45);
    let customer = Dataset::collect(&customer_schema(1.0), queries, &ctx.config, 4);

    let one = KccaPredictor::train(&ctx.train, PredictorOptions::default()).expect("trains");
    let two = TwoStepPredictor::train(&ctx.train, PredictorOptions::default()).expect("trains");
    let p1 = one.predict_dataset(&customer).expect("predicts");
    let p2 = two.predict_dataset(&customer).expect("predicts");
    let actual = customer.elapsed();

    let summarize = |preds: &[qpp_core::Prediction]| -> (f64, f64, usize) {
        let mut log_ratio_sum = 0.0;
        let mut worst: f64 = 0.0;
        let mut over10 = 0;
        for (p, a) in preds.iter().zip(actual.iter()) {
            let r = (p.metrics.elapsed_seconds.max(1e-9) / a.max(1e-9)).max(1e-12);
            log_ratio_sum += r.ln();
            worst = worst.max(r);
            if r > 10.0 {
                over10 += 1;
            }
        }
        ((log_ratio_sum / preds.len() as f64).exp(), worst, over10)
    };
    let (geo1, worst1, over10_1) = summarize(&p1);
    let (geo2, worst2, over10_2) = summarize(&p2);

    report.heading(
        2,
        "Experiment 4 (Fig. 15) — different schema (customer queries)",
    );
    report.para(&format!(
        "Model trained on TPC-DS, tested on {} very short customer \
         queries against a different schema. Paper: one-model KCCA \
         over-predicts by one to three orders of magnitude; two-step is \
         'relatively more accurate'; relative errors look huge because \
         the queries are mini-feathers.",
        customer.len()
    ));
    report.table(
        &[
            "model",
            "geometric mean over-prediction",
            "worst over-prediction",
            "queries over-predicted >10x",
        ],
        &[
            vec![
                "one-model KCCA".into(),
                format!("{geo1:.1}x"),
                format!("{worst1:.0}x"),
                format!("{over10_1}/{}", customer.len()),
            ],
            vec![
                "two-step KCCA".into(),
                format!("{geo2:.1}x"),
                format!("{worst2:.0}x"),
                format!("{over10_2}/{}", customer.len()),
            ],
        ],
    );
    ExperimentResult {
        id: "fig15",
        headline: geo1,
        values: vec![
            ("two_step_geo", geo2),
            ("one_model_worst", worst1),
            ("one_model_over10", over10_1 as f64),
        ],
    }
}

/// Fig. 16 — configurations of the 32-node system.
pub fn fig16(report: &mut Report) -> ExperimentResult {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut disk_null = 0;
    let mut elapsed_risks = Vec::new();
    // 280 queries rerun (same specs) on each configuration. The paper
    // reran the *standard* TPC-DS templates here — not the hand-written
    // problem templates — and found every query short-running on the
    // 32-node system.
    let mut gen = WorkloadGenerator::tpcds(1.0, SEED + 16);
    let mut queries = gen.generate_class(qpp_workload::TemplateClass::Reporting, 180);
    queries.extend(gen.generate_class(qpp_workload::TemplateClass::AdHoc, 70));
    queries.extend(gen.generate_class(qpp_workload::TemplateClass::CrossFact, 30));
    // Shuffle (deterministically) so the 197/83 split sees every class
    // on both sides.
    {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(SEED + 17);
        queries.shuffle(&mut rng);
    }
    let schema = gen.schema().clone();
    // The four CPU configurations are independent end-to-end runs
    // (collect + train + evaluate); fan them out and assemble the
    // table serially in configuration order.
    let cpu_configs = [4u32, 8, 16, 32];
    let per_config = qpp_par::parallel_map(&cpu_configs, 1, |&cpus| {
        let config = SystemConfig::neoview_32(cpus);
        let ds = Dataset::collect(&schema, queries.clone(), &config, 4);
        let train_idx: Vec<usize> = (0..197).collect();
        let test_idx: Vec<usize> = (197..280).collect();
        let train = ds.subset(&train_idx);
        let test = ds.subset(&test_idx);
        let model = KccaPredictor::train(&train, PredictorOptions::default()).expect("trains");
        let preds = model.predict_dataset(&test).expect("predicts");
        let eval = evaluate(&preds, &test);
        // The paper notes predictive risk "tends to be sensitive to
        // outliers and in several cases improved significantly by
        // removing the top one or two outliers" (§VI-C); with the
        // narrow elapsed spread of the 32-node system a single miss
        // dominates, so this table reports risks with the single worst
        // residual removed per metric.
        let actual = test.performance_matrix();
        let trimmed: Vec<Option<f64>> = (0..PerfMetrics::DIM)
            .map(|m| {
                let a: Vec<f64> = actual.col(m);
                let p: Vec<f64> = preds.iter().map(|pr| pr.metrics.to_vec()[m]).collect();
                let mean = a.iter().sum::<f64>() / a.len().max(1) as f64;
                let var: f64 = a.iter().map(|v| (v - mean) * (v - mean)).sum();
                if var <= 1e-12 {
                    None
                } else {
                    Some(predictive_risk_dropping_outliers(&p, &a, 1))
                }
            })
            .collect();
        (trimmed, eval.predictive_risk[1].is_none())
    });
    for (cpus, (trimmed, disk_is_null)) in cpu_configs.iter().zip(per_config.iter()) {
        if *disk_is_null {
            disk_null += 1;
        }
        elapsed_risks.push(trimmed[0].unwrap_or(f64::NAN));
        let mut row = vec![format!("{cpus} nodes")];
        row.extend(trimmed.iter().map(|r| risk_cell(*r)));
        rows.push(row);
    }
    report.heading(2, "Fig. 16 — 32-node system, 4/8/16/32-CPU configurations");
    report.para(
        "197 training / 83 test TPC-DS queries rerun per configuration \
         (data stays partitioned across all 32 disks). Paper: effective \
         prediction on every configuration; disk I/O risk is Null on \
         8/16/32 CPUs because the added memory caches all tables — only \
         the 4-CPU configuration pays disk I/O. Risks shown with the \
         single worst residual removed per metric, following the \
         paper's §VI-C remark on outlier sensitivity.",
    );
    report.table(&metric_headers(), &rows);
    ExperimentResult {
        id: "fig16",
        headline: elapsed_risks.iter().cloned().fold(f64::INFINITY, f64::min),
        values: vec![
            ("disk_null_configs", disk_null as f64),
            ("risk_4cpu", elapsed_risks[0]),
            ("risk_32cpu", elapsed_risks[3]),
        ],
    }
}

/// Fig. 17 — optimizer cost estimates vs. actual elapsed time.
pub fn fig17(ctx: &Context, report: &mut Report) -> ExperimentResult {
    let model = OptimizerCostModel::train(&ctx.train).expect("trains");
    let preds = model.predict_dataset(&ctx.test);
    let actual = ctx.test.elapsed();
    let risk = predictive_risk(&preds, &actual);
    let over10 = preds
        .iter()
        .zip(actual.iter())
        .filter(|(p, a)| ratio(**p, **a) > 10.0)
        .count();
    let within20 = fraction_within(&preds, &actual, 0.2);
    report.heading(2, "Fig. 17 — optimizer cost vs. actual elapsed time");
    report.para(&format!(
        "Optimizer cost units mapped to time through a log-log line of \
         best fit on the training set (cost units are not time units, \
         so no 'perfect prediction' line exists). Paper: estimates do \
         not correspond to actual resource usage for many queries — \
         several points 10x–100x from the best fit — and the KCCA model \
         (Fig. 14) is clearly more accurate. Measured: best-fit \
         ln t = {:.2} + {:.2} ln cost; elapsed-time risk **{risk:.3}**; \
         {over10}/{} queries 10x+ from the fit; within 20%: {:.0}%.",
        model.intercept,
        model.slope,
        ctx.test.len(),
        within20 * 100.0,
    ));
    scatter_summary(report, &preds, &actual, "s");
    ExperimentResult {
        id: "fig17",
        headline: risk,
        values: vec![("over10", over10 as f64), ("within20", within20)],
    }
}

/// Extension — PQR-style runtime-range baseline (related work, §III).
pub fn pqr(ctx: &Context, report: &mut Report) -> ExperimentResult {
    let model = PqrPredictor::train(
        &ctx.train,
        FeatureKind::QueryPlan,
        PqrPredictor::default_bounds(),
    )
    .expect("pqr trains");
    let accuracy = model.range_accuracy(&ctx.test);
    // KCCA point predictions scored the same way: does the point land
    // in the same bucket as the actual time?
    let kcca = KccaPredictor::train(&ctx.train, PredictorOptions::default()).expect("trains");
    let bounds = PqrPredictor::default_bounds();
    let bucket = |t: f64| {
        bounds
            .iter()
            .position(|&b| t < b)
            .unwrap_or(bounds.len() - 1)
    };
    let kcca_bucket_acc = kcca
        .predict_dataset(&ctx.test)
        .expect("predicts")
        .iter()
        .zip(ctx.test.records.iter())
        .filter(|(p, r)| bucket(p.metrics.elapsed_seconds) == bucket(r.metrics.elapsed_seconds))
        .count() as f64
        / ctx.test.len() as f64;
    report.heading(
        2,
        "Extension — PQR runtime-range baseline (related work §III)",
    );
    report.para(&format!(
        "PQR predicts only coarse elapsed-time *ranges* via a decision          tree over plan features, and no other metric. Measured range          accuracy over six log-spaced buckets: **{:.0}%**; the KCCA          point prediction lands in the correct bucket {:.0}% of the time          while additionally providing five more metrics and continuous          values.",
        accuracy * 100.0,
        kcca_bucket_acc * 100.0
    ));
    ExperimentResult {
        id: "pqr",
        headline: accuracy,
        values: vec![("kcca_bucket_accuracy", kcca_bucket_acc)],
    }
}

/// Extension — feature-importance analysis (paper §VII-C.2).
pub fn feature_importance(ctx: &Context, report: &mut Report) -> ExperimentResult {
    let model = KccaPredictor::train(&ctx.train, PredictorOptions::default()).expect("trains");
    let ranking = rank_features(&model, &ctx.train, &ctx.test).expect("ranking");
    let share = join_feature_share(&ranking);
    report.heading(
        2,
        "Extension — which plan features does the model key on? (§VII-C.2)",
    );
    report.para(&format!(
        "Per-feature agreement between test queries and their nearest          neighbors, relative to random training pairs (1.0 = neighbors          always agree exactly; 0 = no role). The paper's cursory finding          was that join-operator counts and cardinalities contribute the          most; here join-family features carry **{:.0}%** of the total          positive importance.",
        share * 100.0
    ));
    let rows: Vec<Vec<String>> = ranking
        .iter()
        .take(10)
        .map(|f| {
            vec![
                f.feature.clone(),
                format!("{:.3}", f.importance),
                format!("{:.3}", f.neighbor_disagreement),
                format!("{:.3}", f.baseline_disagreement),
            ]
        })
        .collect();
    report.table(
        &[
            "feature",
            "importance",
            "neighbor disagreement",
            "chance disagreement",
        ],
        &rows,
    );
    ExperimentResult {
        id: "feature_importance",
        headline: share,
        values: vec![("top_importance", ranking[0].importance)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One shared small context keeps the test suite fast; the full-size
    // experiments run through the binary / integration tests.
    fn small_ctx() -> Context {
        Context::build_sized(3000)
    }

    #[test]
    fn context_pools_have_requested_mix() {
        let ctx = small_ctx();
        assert!(ctx.train.len() > 100);
        assert!(!ctx.test.is_empty());
        assert!(ctx
            .test
            .records
            .iter()
            .any(|r| r.category == QueryCategory::BowlingBall));
    }

    #[test]
    fn experiment1_produces_sane_report() {
        // The pools at this reduced population are tiny, so risk
        // *orderings* are asserted at full scale by the root
        // integration tests; here we check the machinery and that the
        // one-model KCCA is at least in a usable band.
        let ctx = small_ctx();
        let mut report = Report::new();
        let e1 = experiment1(&ctx, &mut report);
        assert!(e1.headline.is_finite());
        let within2x = e1
            .values
            .iter()
            .find(|(k, _)| *k == "within2x")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(within2x > 0.5, "within 2x only {within2x}");
        let md = report.finish();
        assert!(md.contains("Experiment 1"));
        assert!(md.contains("Widest misses"));
    }

    #[test]
    fn regression_baseline_goes_negative() {
        let ctx = small_ctx();
        let mut report = Report::new();
        let r = fig3_fig4(&ctx, &mut report);
        assert!(
            r.headline + r.values[0].1 > 0.0,
            "expected negative OLS predictions somewhere"
        );
    }

    #[test]
    fn experiment4_runs_on_foreign_schema() {
        let ctx = small_ctx();
        let mut report = Report::new();
        let r = experiment4(&ctx, &mut report);
        // At this reduced scale only the machinery is asserted (the
        // over-prediction magnitude is checked at full scale through
        // the harness); the worst-case ratio must still show the
        // foreign-schema mismatch.
        assert!(r.headline.is_finite() && r.headline > 0.0);
        let worst = r
            .values
            .iter()
            .find(|(k, _)| *k == "one_model_worst")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(worst > 2.0, "worst over-prediction only {worst}");
        assert!(report.finish().contains("customer"));
    }
}
