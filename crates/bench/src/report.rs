//! Small markdown-report helpers for the experiments binary.

use std::fmt::Write;

/// Accumulates a markdown document.
#[derive(Debug, Default)]
pub struct Report {
    buf: String,
}

impl Report {
    /// New empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a section heading.
    pub fn heading(&mut self, level: usize, text: &str) {
        let _ = writeln!(self.buf, "\n{} {}\n", "#".repeat(level.clamp(1, 6)), text);
    }

    /// Appends a paragraph.
    pub fn para(&mut self, text: &str) {
        let _ = writeln!(self.buf, "{text}\n");
    }

    /// Appends a markdown table.
    pub fn table(&mut self, headers: &[&str], rows: &[Vec<String>]) {
        let _ = writeln!(self.buf, "| {} |", headers.join(" | "));
        let _ = writeln!(
            self.buf,
            "|{}|",
            headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in rows {
            let _ = writeln!(self.buf, "| {} |", row.join(" | "));
        }
        let _ = writeln!(self.buf);
    }

    /// The rendered document.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Formats seconds as `hh:mm:ss.s` (the paper's Fig. 2 style).
pub fn hms(seconds: f64) -> String {
    let total = seconds.max(0.0);
    let h = (total / 3600.0).floor() as u64;
    let m = ((total % 3600.0) / 60.0).floor() as u64;
    let s = total % 60.0;
    format!("{h:02}:{m:02}:{s:04.1}")
}

/// Formats an optional predictive risk (`Null` for constant metrics,
/// matching the paper's Fig. 16 cells).
pub fn risk_cell(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{v:.3}"),
        None => "Null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut r = Report::new();
        r.heading(2, "Title");
        r.table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        let s = r.finish();
        assert!(s.contains("## Title"));
        assert!(s.contains("| a | b |"));
        assert!(s.contains("|---|---|"));
        assert!(s.contains("| 1 | 2 |"));
    }

    #[test]
    fn hms_formats() {
        assert_eq!(hms(2.7), "00:00:02.7");
        assert_eq!(hms(185.0), "00:03:05.0");
        assert_eq!(hms(6890.0), "01:54:50.0");
    }

    #[test]
    fn risk_cell_null() {
        assert_eq!(risk_cell(None), "Null");
        assert_eq!(risk_cell(Some(0.5514)), "0.551");
    }
}
