//! Experiment harness for the ICDE 2009 reproduction.
//!
//! Every table and figure of the paper's evaluation has a function here
//! that regenerates it against the simulated testbed; the `experiments`
//! binary renders them as a markdown report (this is how
//! `EXPERIMENTS.md` is produced). Criterion microbenchmarks live under
//! `benches/`.

pub mod experiments;
pub mod report;

pub use experiments::{Context, ExperimentResult};
