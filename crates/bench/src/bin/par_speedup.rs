//! Measures the speedup of the deterministic parallel engine: runs the
//! KCCA training and prediction hot paths once with 1 thread and once
//! with the full pool, verifies the outputs are bitwise identical, and
//! prints the wall-clock ratio.
//!
//! ```text
//! cargo run --release -p qpp-bench --bin par_speedup
//! cargo run --release -p qpp-bench --bin par_speedup -- --rows 800
//! QPP_THREADS=8 cargo run --release -p qpp-bench --bin par_speedup
//! ```

use qpp_linalg::Matrix;
use qpp_ml::{DistanceMetric, Kcca, KccaOptions, NearestNeighbors};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn synthetic_pair(n: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, 12);
    let mut y = Matrix::zeros(n, 6);
    for i in 0..n {
        let mut norm = 0.0;
        for j in 0..12 {
            let v = rng.random_range(-2.0..2.0);
            x[(i, j)] = v;
            norm += v * v;
        }
        for j in 0..6 {
            y[(i, j)] = norm.sqrt() * (j as f64 + 1.0) + 0.05 * rng.random_range(-1.0..1.0);
        }
    }
    (x, y)
}

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

fn main() {
    let mut rows = 600usize;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--rows" => {
                rows = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--rows needs a numeric value")
            }
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }

    let threads = qpp_par::current_threads();
    println!("pool threads: {threads} (override with QPP_THREADS)");
    println!("training rows: {rows}\n");

    let (x, y) = synthetic_pair(rows, 42);
    let (probes, _) = synthetic_pair(rows / 2, 43);
    let opts = KccaOptions::default();

    // Warm up the pool so thread spawning is not billed to the run.
    let _ = qpp_par::parallel_for_chunks(1024, 8, |c| c.range.len());

    let (serial_model, t_fit_1) = qpp_par::with_threads(1, || {
        timed(|| Kcca::fit(x.view(), y.view(), opts).expect("fit"))
    });
    let (par_model, t_fit_n) = timed(|| Kcca::fit(x.view(), y.view(), opts).expect("fit"));

    let same_projection = serial_model.query_projection() == par_model.query_projection();
    let same_correlations = serial_model.correlations() == par_model.correlations();
    assert!(
        same_projection && same_correlations,
        "parallel KCCA fit diverged from serial fit"
    );

    let (serial_proj, t_proj_1) = qpp_par::with_threads(1, || {
        timed(|| {
            serial_model
                .project_queries_with_similarity(probes.view())
                .expect("project")
        })
    });
    let (par_proj, t_proj_n) = timed(|| {
        par_model
            .project_queries_with_similarity(probes.view())
            .expect("project")
    });
    assert!(serial_proj == par_proj, "batch projection diverged");

    let knn = NearestNeighbors::new(
        par_model.query_projection().clone(),
        DistanceMetric::Euclidean,
    );
    let (serial_knn, t_knn_1) = qpp_par::with_threads(1, || {
        timed(|| {
            serial_proj
                .iter()
                .map(|(p, _)| knn.query(p, 3))
                .collect::<Vec<_>>()
        })
    });
    let (par_knn, t_knn_n) = timed(|| {
        par_proj
            .iter()
            .map(|(p, _)| knn.query(p, 3))
            .collect::<Vec<_>>()
    });
    assert!(serial_knn == par_knn, "knn queries diverged");

    println!("stage                1 thread    {threads} threads  speedup");
    for (label, t1, tn) in [
        ("kcca fit", t_fit_1, t_fit_n),
        ("batch projection", t_proj_1, t_proj_n),
        ("knn queries", t_knn_1, t_knn_n),
    ] {
        println!(
            "{label:<20} {:>8.3}s   {:>8.3}s   {:>5.2}x",
            t1,
            tn,
            t1 / tn.max(1e-12)
        );
    }
    println!("\nall outputs bitwise identical across thread counts");
}
