//! Serve-path soak benchmark for the sharded multi-tenant pipeline.
//! Phase 1 drives an uncontended single-tenant load and reports raw
//! throughput and client-side latency quantiles; phase 2 overloads a
//! small worker pool with 60+ closed-loop clients spread over three
//! weighted tenants and reports each tenant's completion share against
//! its deficit-round-robin fair share. Writes `BENCH_serve.json` in the
//! working directory.
//!
//! ```text
//! cargo run --release -p qpp-bench --bin serve_bench
//! cargo run --release -p qpp-bench --bin serve_bench -- \
//!     --requests 20000 --workers 4 --burst-ms 2000 \
//!     --gate-fairness 0.10 --gate-p99-us 20000 --gate-throughput 12000
//! ```

use qpp_core::baselines::OptimizerCostModel;
use qpp_core::pipeline::collect_tpcds;
use qpp_core::{Dataset, FeatureKind, KccaPredictor, PredictorOptions};
use qpp_engine::SystemConfig;
use qpp_serve::{
    ModelKey, ModelRegistry, PredictRequest, PredictionService, QppError, ServeOptions, TenantId,
    TenantSpec,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    requests: usize,
    clients: usize,
    workers: usize,
    batch: usize,
    queue: usize,
    burst_clients: usize,
    burst: Duration,
    gate_fairness: Option<f64>,
    gate_p99_us: Option<f64>,
    gate_throughput: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 20_000,
        clients: 8,
        workers: 4,
        batch: 16,
        queue: 512,
        burst_clients: 22,
        burst: Duration::from_millis(2_000),
        gate_fairness: None,
        gate_p99_us: None,
        gate_throughput: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> f64 {
            argv.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{} needs a numeric value", argv[i]))
        };
        match argv[i].as_str() {
            "--requests" => args.requests = value(i) as usize,
            "--clients" => args.clients = (value(i) as usize).max(1),
            "--workers" => args.workers = (value(i) as usize).max(1),
            "--batch" => args.batch = (value(i) as usize).max(1),
            "--queue" => args.queue = (value(i) as usize).max(1),
            "--burst-clients" => args.burst_clients = (value(i) as usize).max(1),
            "--burst-ms" => args.burst = Duration::from_millis(value(i) as u64),
            "--gate-fairness" => args.gate_fairness = Some(value(i)),
            "--gate-p99-us" => args.gate_p99_us = Some(value(i)),
            "--gate-throughput" => args.gate_throughput = Some(value(i)),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    args
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    v
}

fn start_service(
    registry: &Arc<ModelRegistry>,
    args: &Args,
    workers: usize,
    shards: usize,
    tenants: Vec<TenantSpec>,
) -> Arc<PredictionService> {
    Arc::new(PredictionService::start(
        Arc::clone(registry),
        ServeOptions {
            workers,
            shards,
            queue_capacity: args.queue,
            max_batch: args.batch,
            tenants,
            ..ServeOptions::default()
        },
    ))
}

fn request(live: &Dataset, i: usize, key: &ModelKey, tenant: TenantId) -> PredictRequest {
    let r = &live.records[i % live.records.len()];
    PredictRequest {
        key: key.clone(),
        tenant,
        spec: r.spec.clone(),
        plan: r.optimized.plan.clone(),
        deadline: Duration::from_secs(30),
    }
}

/// Phase 1: closed-loop clients against a full worker complement, no
/// contention for shard slots — the raw pipeline throughput.
fn run_uncontended(
    registry: &Arc<ModelRegistry>,
    key: &ModelKey,
    live: &Dataset,
    args: &Args,
) -> (f64, f64, f64) {
    let service = start_service(registry, args, args.workers, 0, Vec::new());
    let per_client = args.requests.div_ceil(args.clients);
    eprintln!(
        "phase 1 (uncontended): {} requests via {} clients -> {} workers",
        per_client * args.clients,
        args.clients,
        args.workers,
    );
    let t0 = Instant::now();
    let clients: Vec<_> = (0..args.clients)
        .map(|c| {
            let service = Arc::clone(&service);
            let live = live.clone();
            let key = key.clone();
            std::thread::spawn(move || {
                let mut lat_us = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let t = Instant::now();
                    service
                        .submit(request(&live, c * per_client + i, &key, TenantId(0)))
                        .expect("uncontended load is never shed");
                    lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                }
                lat_us
            })
        })
        .collect();
    let lat: Vec<f64> = clients
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    let lat = sorted(lat);
    (
        lat.len() as f64 / wall,
        quantile(&lat, 0.50),
        quantile(&lat, 0.99),
    )
}

/// One tenant's outcome under the burst phase.
struct TenantOutcome {
    id: u32,
    name: &'static str,
    weight: u32,
    clients: usize,
    completed: u64,
    shed: u64,
    p50_us: f64,
    p99_us: f64,
}

/// Phase 2: three weighted tenants, each with its own closed-loop
/// client herd, against a deliberately small worker pool so every shard
/// stays backlogged and the deficit-round-robin gate decides who runs.
fn run_burst(
    registry: &Arc<ModelRegistry>,
    key: &ModelKey,
    live: &Dataset,
    args: &Args,
) -> (Vec<TenantOutcome>, f64) {
    let tenants: [(u32, &'static str, u32); 3] =
        [(1, "interactive", 3), (2, "reporting", 2), (3, "batch", 1)];
    let specs = tenants
        .iter()
        .map(|&(id, name, w)| TenantSpec::new(TenantId(id), name).weight(w))
        .collect();
    // Two workers against 3 * burst_clients closed loops: sustained
    // overload, so completions are rationed by weight, not by arrival.
    // One shard: weighted fair share is a per-admission-domain property
    // (each shard's deficit round-robin arbitrates the tenants hashed to
    // it), so the fairness measurement pins all three tenants into a
    // single domain instead of letting the tenant->shard hash split
    // them across independently-arbitrated queues.
    let service = start_service(registry, args, 2, 1, specs);
    eprintln!(
        "phase 2 (burst): {} clients per tenant x {:?} for {:?}",
        args.burst_clients,
        tenants.map(|t| t.1),
        args.burst,
    );
    let stop = Arc::new(AtomicBool::new(false));
    let herds: Vec<_> = tenants
        .iter()
        .flat_map(|&(id, _, _)| (0..args.burst_clients).map(move |c| (id, c)))
        .map(|(id, c)| {
            let service = Arc::clone(&service);
            let live = live.clone();
            let key = key.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut completed = 0u64;
                let mut shed = 0u64;
                let mut lat_us = Vec::new();
                let mut i = c * 1009;
                // ordering: best-effort stop flag; a late iteration or
                // two after the store is harmless in a benchmark.
                while !stop.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    match service.submit(request(&live, i, &key, TenantId(id))) {
                        Ok(_) => {
                            completed += 1;
                            lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                        }
                        Err(QppError::QueueFull { .. })
                        | Err(QppError::TenantQuotaExceeded { .. }) => {
                            shed += 1;
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(e) => panic!("burst client hit {e}"),
                    }
                    i += 1;
                }
                (id, completed, shed, lat_us)
            })
        })
        .collect();
    let t0 = Instant::now();
    std::thread::sleep(args.burst);
    // ordering: no payload rides on the flag; `join` below is the real
    // synchronization point for the per-thread tallies.
    stop.store(true, Ordering::Relaxed);
    let mut per_tenant: Vec<(u64, u64, Vec<f64>)> = vec![(0, 0, Vec::new()); 3];
    for h in herds {
        let (id, completed, shed, lat) = h.join().unwrap();
        let slot = &mut per_tenant[id as usize - 1];
        slot.0 += completed;
        slot.1 += shed;
        slot.2.extend(lat);
    }
    let wall = t0.elapsed().as_secs_f64();
    let outcomes = tenants
        .iter()
        .zip(per_tenant)
        .map(|(&(id, name, weight), (completed, shed, lat))| {
            let lat = sorted(lat);
            TenantOutcome {
                id,
                name,
                weight,
                clients: args.burst_clients,
                completed,
                shed,
                p50_us: quantile(&lat, 0.50),
                p99_us: quantile(&lat, 0.99),
            }
        })
        .collect::<Vec<_>>();
    let total: u64 = outcomes.iter().map(|t| t.completed).sum();
    (outcomes, total as f64 / wall)
}

fn main() {
    let args = parse_args();
    let config = SystemConfig::neoview_4();
    eprintln!("training serving model …");
    let train = collect_tpcds(400, 31, &config, 4);
    let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
    let fallback = OptimizerCostModel::train(&train).unwrap();
    let key = ModelKey::new(config.name.clone(), FeatureKind::QueryPlan);
    let registry = Arc::new(ModelRegistry::new());
    registry.install(key.clone(), model, fallback);
    let live = collect_tpcds(200, 93, &config, 4);

    let (throughput, p50, p99) = run_uncontended(&registry, &key, &live, &args);
    eprintln!(
        "uncontended: {:.0} req/s, p50 {:.0} us, p99 {:.0} us",
        throughput, p50, p99,
    );

    let (burst, burst_throughput) = run_burst(&registry, &key, &live, &args);
    let total: u64 = burst.iter().map(|t| t.completed).sum();
    let total_weight: u32 = burst.iter().map(|t| t.weight).sum();
    let mut worst_fairness_err = 0.0f64;
    let tenant_rows: Vec<String> = burst
        .iter()
        .map(|t| {
            let share = t.completed as f64 / total.max(1) as f64;
            let fair = t.weight as f64 / total_weight as f64;
            let err = (share - fair).abs() / fair;
            worst_fairness_err = worst_fairness_err.max(err);
            eprintln!(
                "burst tenant {} ({}): weight {} -> share {:.3} (fair {:.3}, err {:.1}%), \
                 completed {}, shed {}, p50 {:.0} us, p99 {:.0} us",
                t.id,
                t.name,
                t.weight,
                share,
                fair,
                err * 100.0,
                t.completed,
                t.shed,
                t.p50_us,
                t.p99_us,
            );
            format!(
                "    {{\"id\": {}, \"name\": \"{}\", \"weight\": {}, \"clients\": {}, \"completed\": {}, \"shed\": {}, \"share\": {:.4}, \"fair_share\": {:.4}, \"share_err\": {:.4}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}",
                t.id, t.name, t.weight, t.clients, t.completed, t.shed, share, fair, err, t.p50_us, t.p99_us,
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"workers\": {},\n  \"queue_capacity\": {},\n  \"max_batch\": {},\n  \"uncontended\": {{\n    \"requests\": {},\n    \"clients\": {},\n    \"throughput_per_sec\": {:.1},\n    \"p50_us\": {:.1},\n    \"p99_us\": {:.1}\n  }},\n  \"burst\": {{\n    \"duration_ms\": {},\n    \"throughput_per_sec\": {:.1},\n    \"worst_fairness_err\": {:.4},\n    \"tenants\": [\n{}\n    ]\n  }}\n}}\n",
        args.workers,
        args.queue,
        args.batch,
        args.requests,
        args.clients,
        throughput,
        p50,
        p99,
        args.burst.as_millis(),
        burst_throughput,
        worst_fairness_err,
        tenant_rows.join(",\n"),
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!("wrote BENCH_serve.json");

    let mut failed = false;
    if let Some(limit) = args.gate_fairness {
        if worst_fairness_err > limit {
            eprintln!(
                "GATE FAIL: worst per-tenant fairness error {:.1}% exceeds {:.1}%",
                worst_fairness_err * 100.0,
                limit * 100.0,
            );
            failed = true;
        } else {
            eprintln!(
                "gate ok: fairness err {:.1}% <= {:.1}%",
                worst_fairness_err * 100.0,
                limit * 100.0,
            );
        }
    }
    if let Some(limit) = args.gate_p99_us {
        if p99 > limit {
            eprintln!("GATE FAIL: uncontended p99 {p99:.0} us exceeds {limit:.0} us");
            failed = true;
        } else {
            eprintln!("gate ok: uncontended p99 {p99:.0} us <= {limit:.0} us");
        }
    }
    if let Some(limit) = args.gate_throughput {
        if throughput < limit {
            eprintln!("GATE FAIL: uncontended throughput {throughput:.0} req/s below {limit:.0}");
            failed = true;
        } else {
            eprintln!("gate ok: uncontended throughput {throughput:.0} >= {limit:.0} req/s");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
