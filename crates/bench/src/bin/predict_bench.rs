//! Predict-path benchmark: single-query latency quantiles, batch
//! throughput, heap allocations per request on the zero-copy data
//! plane, and qpp-obs per-stage breakdowns of both training and the
//! predict hot path. Writes `BENCH_predict.json` in the working
//! directory.
//!
//! ```text
//! cargo run --release -p qpp-bench --bin predict_bench
//! cargo run --release -p qpp-bench --bin predict_bench -- \
//!     --train 400 --requests 20000 --batch 64
//! ```

use counting_alloc::CountingAllocator;
use qpp_core::features::query_features;
use qpp_core::pipeline::collect_tpcds;
use qpp_core::{KccaPredictor, PredictorOptions};
use qpp_engine::SystemConfig;
use qpp_linalg::Matrix;
use qpp_ml::{DistanceMetric, IvfIndex, IvfOptions, KnnScratch, NearestNeighbors};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

struct Args {
    train: usize,
    requests: usize,
    batch: usize,
    /// Training-row counts for the scaling sweep (`--sweep 400,5000,20000`).
    sweep: Vec<usize>,
    /// When set, exit non-zero if `train_eigensolve` exceeds this share
    /// of `train_total` at the largest sweep size (the CI gate).
    gate_share: Option<f64>,
    /// Reference-row counts for the kNN scaling sweep
    /// (`--knn-sweep 1000,10000,100000`).
    knn_sweep: Vec<usize>,
    /// When set, exit non-zero if IVF query p99 at the largest kNN-sweep
    /// size exceeds this multiple of its smallest-size p99 (the
    /// flat-latency CI gate; brute force documents the linear blow-up).
    gate_knn_flat: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        train: 400,
        requests: 10_000,
        batch: 64,
        sweep: vec![400, 5_000, 20_000],
        gate_share: None,
        knn_sweep: vec![1_000, 10_000, 100_000],
        gate_knn_flat: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> usize {
            argv.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{} needs a numeric value", argv[i]))
        };
        match argv[i].as_str() {
            "--train" => args.train = value(i).max(50),
            "--requests" => args.requests = value(i).max(100),
            "--batch" => args.batch = value(i).max(1),
            "--sweep" => {
                args.sweep = argv
                    .get(i + 1)
                    .map(|v| {
                        v.split(',')
                            .map(|n| {
                                n.parse::<usize>()
                                    .unwrap_or_else(|_| panic!("bad --sweep entry {n}"))
                                    .max(50)
                            })
                            .collect()
                    })
                    .unwrap_or_default();
            }
            "--gate-share" => {
                args.gate_share = Some(
                    argv.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--gate-share needs a fraction")),
                );
            }
            "--knn-sweep" => {
                args.knn_sweep = argv
                    .get(i + 1)
                    .map(|v| {
                        v.split(',')
                            .map(|n| {
                                n.parse::<usize>()
                                    .unwrap_or_else(|_| panic!("bad --knn-sweep entry {n}"))
                                    .max(200)
                            })
                            .collect()
                    })
                    .unwrap_or_default();
            }
            "--gate-knn-flat" => {
                args.gate_knn_flat = Some(
                    argv.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--gate-knn-flat needs a multiplier")),
                );
            }
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    args.sweep.sort_unstable();
    args.knn_sweep.sort_unstable();
    args
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Per-stage (hits, total_ns) deltas between two recorder summaries —
/// the exact cost of the code that ran between the two snapshots.
fn diff_stages(
    before: &[qpp_obs::StageSummary],
    after: &[qpp_obs::StageSummary],
) -> Vec<(qpp_obs::Stage, u64, u64)> {
    after
        .iter()
        .map(|a| {
            let b = before.iter().find(|b| b.stage == a.stage);
            (
                a.stage,
                a.hits - b.map_or(0, |b| b.hits),
                a.total_ns - b.map_or(0, |b| b.total_ns),
            )
        })
        .filter(|(_, hits, _)| *hits > 0)
        .collect()
}

/// Renders stage deltas as a JSON object keyed by stage name.
fn stages_json(stages: &[(qpp_obs::Stage, u64, u64)], indent: &str) -> String {
    let entries: Vec<String> = stages
        .iter()
        .map(|(stage, hits, ns)| {
            format!(
                "{indent}  \"{stage}\": {{\"hits\": {hits}, \"total_us\": {:.3}, \"mean_us\": {:.3}}}",
                *ns as f64 / 1e3,
                *ns as f64 / 1e3 / (*hits).max(1) as f64,
            )
        })
        .collect();
    format!("{{\n{}\n{indent}}}", entries.join(",\n"))
}

/// One row of the train-scaling sweep: wall-clock totals per stage for
/// a fresh model trained on `rows` queries.
struct SweepPoint {
    rows: usize,
    train_total_us: f64,
    eigensolve_us: f64,
    reduce_us: f64,
    subspace_us: f64,
    backtransform_us: f64,
}

impl SweepPoint {
    fn eigensolve_share(&self) -> f64 {
        self.eigensolve_us / self.train_total_us.max(1e-9)
    }
}

/// Trains a throwaway model per sweep size and captures the qpp-obs
/// stage deltas, isolating `train_eigensolve` and its sub-stages.
fn run_train_sweep(sweep: &[usize], config: &SystemConfig) -> Vec<SweepPoint> {
    let mut points = Vec::with_capacity(sweep.len());
    for &rows in sweep {
        eprintln!("sweep: training on {rows} queries …");
        let data = collect_tpcds(rows, 29, config, 4);
        let before = qpp_obs::recorder().stage_summary();
        let model = KccaPredictor::train(&data, PredictorOptions::default()).expect("sweep train");
        let stages = diff_stages(&before, &qpp_obs::recorder().stage_summary());
        std::hint::black_box(model);
        let us = |name: &str| -> f64 {
            stages
                .iter()
                .find(|(s, _, _)| s.name() == name)
                .map_or(0.0, |(_, _, ns)| *ns as f64 / 1e3)
        };
        points.push(SweepPoint {
            rows,
            train_total_us: us("train_total"),
            eigensolve_us: us("train_eigensolve"),
            reduce_us: us("train_eigen_reduce"),
            subspace_us: us("train_eigen_subspace"),
            backtransform_us: us("train_eigen_backtransform"),
        });
    }
    points
}

fn sweep_json(points: &[SweepPoint]) -> String {
    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"rows\": {}, \"train_total_us\": {:.3}, \"train_eigensolve_us\": {:.3}, \"eigensolve_share\": {:.4}, \"eigen_reduce_us\": {:.3}, \"eigen_subspace_us\": {:.3}, \"eigen_backtransform_us\": {:.3}}}",
                p.rows,
                p.train_total_us,
                p.eigensolve_us,
                p.eigensolve_share(),
                p.reduce_us,
                p.subspace_us,
                p.backtransform_us,
            )
        })
        .collect();
    format!("[\n{}\n  ]", entries.join(",\n"))
}

/// One row of the kNN scaling sweep: brute vs IVF query latency over a
/// synthetic clustered reference of `rows` points.
struct KnnSweepPoint {
    rows: usize,
    nlist: usize,
    nprobe: usize,
    ivf_build_ms: f64,
    recall_at_k: f64,
    brute_p50_us: f64,
    brute_p99_us: f64,
    ivf_p50_us: f64,
    ivf_p99_us: f64,
}

/// Dimensionality of the synthetic kNN-sweep reference — matches the
/// KCCA projection space (≤ 16 canonical dims).
const KNN_SWEEP_DIM: usize = 16;
const KNN_SWEEP_PROBES: usize = 400;
const KNN_SWEEP_K: usize = 3;

/// Clustered synthetic rows (256 centers, ±2 jitter per component) —
/// the shape a KCCA query projection has (§VI's clustering effect),
/// and the regime IVF is built for.
fn knn_sweep_rows(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centers = Matrix::zeros(256, KNN_SWEEP_DIM);
    for i in 0..centers.rows() {
        for j in 0..KNN_SWEEP_DIM {
            centers[(i, j)] = rng.random_range(0.0..100.0);
        }
    }
    let mut rows = Matrix::zeros(n, KNN_SWEEP_DIM);
    for i in 0..n {
        let c = rng.random_range(0..centers.rows());
        for j in 0..KNN_SWEEP_DIM {
            rows[(i, j)] = centers[(c, j)] + rng.random_range(-2.0..2.0);
        }
    }
    rows
}

/// Times brute vs IVF top-k queries per reference size. Brute runs the
/// production `query_into` path (serial within a scan chunk, chunked
/// parallel past it); IVF runs the default auto-sized index. Recall is
/// measured against the brute results (k·probes denominator).
fn run_knn_sweep(sizes: &[usize]) -> Vec<KnnSweepPoint> {
    let mut points = Vec::with_capacity(sizes.len());
    for &rows in sizes {
        eprintln!("knn sweep: {rows} reference rows …");
        let reference = knn_sweep_rows(rows, 17);
        let probes = knn_sweep_rows(KNN_SWEEP_PROBES, 18);
        let brute = NearestNeighbors::new(reference.clone(), DistanceMetric::Euclidean);
        let t_build = Instant::now();
        let ivf = IvfIndex::build(reference, DistanceMetric::Euclidean, IvfOptions::default())
            .expect("ivf build");
        let ivf_build_ms = t_build.elapsed().as_secs_f64() * 1e3;

        let mut brute_scratch = Vec::new();
        let mut ivf_scratch = KnnScratch::new();

        // Time each arm in its own homogeneous pass. Interleaving them
        // would poison the measurement at large N: a brute query streams
        // the whole reference matrix through the cache, evicting the
        // IVF centroids and packed lists right before the IVF timing —
        // a state no real serving deployment (which runs one arm, not
        // both) ever sees. Each pass gets one untimed warm-up sweep so
        // the timed pass measures steady state.
        let mut brute_results: Vec<Vec<qpp_ml::Neighbor>> = Vec::with_capacity(KNN_SWEEP_PROBES);
        let mut brute_us = Vec::with_capacity(KNN_SWEEP_PROBES);
        for p in 0..KNN_SWEEP_PROBES {
            brute.query_into(probes.row(p), KNN_SWEEP_K, &mut brute_scratch);
        }
        for p in 0..KNN_SWEEP_PROBES {
            let t = Instant::now();
            brute.query_into(probes.row(p), KNN_SWEEP_K, &mut brute_scratch);
            brute_us.push(t.elapsed().as_secs_f64() * 1e6);
            brute_results.push(brute_scratch.clone());
        }

        let mut ivf_us = Vec::with_capacity(KNN_SWEEP_PROBES);
        let mut hits = 0usize;
        let mut total = 0usize;
        for p in 0..KNN_SWEEP_PROBES {
            ivf.query_into(probes.row(p), KNN_SWEEP_K, &mut ivf_scratch);
        }
        for (p, exact) in brute_results.iter().enumerate() {
            let t = Instant::now();
            ivf.query_into(probes.row(p), KNN_SWEEP_K, &mut ivf_scratch);
            ivf_us.push(t.elapsed().as_secs_f64() * 1e6);
            total += exact.len();
            for b in exact {
                if ivf_scratch.neighbors.iter().any(|a| a.index == b.index) {
                    hits += 1;
                }
            }
        }
        brute_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        ivf_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        points.push(KnnSweepPoint {
            rows,
            nlist: ivf.nlist(),
            nprobe: ivf.nprobe(),
            ivf_build_ms,
            recall_at_k: hits as f64 / total.max(1) as f64,
            brute_p50_us: quantile(&brute_us, 0.50),
            brute_p99_us: quantile(&brute_us, 0.99),
            ivf_p50_us: quantile(&ivf_us, 0.50),
            ivf_p99_us: quantile(&ivf_us, 0.99),
        });
    }
    points
}

fn knn_sweep_json(points: &[KnnSweepPoint]) -> String {
    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"rows\": {}, \"nlist\": {}, \"nprobe\": {}, \"ivf_build_ms\": {:.1}, \"recall_at_{}\": {:.4}, \"brute_p50_us\": {:.3}, \"brute_p99_us\": {:.3}, \"ivf_p50_us\": {:.3}, \"ivf_p99_us\": {:.3}}}",
                p.rows,
                p.nlist,
                p.nprobe,
                p.ivf_build_ms,
                KNN_SWEEP_K,
                p.recall_at_k,
                p.brute_p50_us,
                p.brute_p99_us,
                p.ivf_p50_us,
                p.ivf_p99_us,
            )
        })
        .collect();
    format!("[\n{}\n  ]", entries.join(",\n"))
}

fn main() {
    let args = parse_args();
    let config = SystemConfig::neoview_4();
    eprintln!("training model on {} queries …", args.train);
    let train = collect_tpcds(args.train, 29, &config, 4);
    let stages_pre_train = qpp_obs::recorder().stage_summary();
    let model = KccaPredictor::train(&train, PredictorOptions::default()).expect("train");
    let train_stages = diff_stages(&stages_pre_train, &qpp_obs::recorder().stage_summary());
    let kind = model.options().feature_kind;

    // Pre-extract feature vectors so the benchmark times the predict
    // path alone, not plan feature extraction.
    let probes: Vec<Vec<f64>> = train // allow-vecvec: bench setup, off the timed path
        .records
        .iter()
        .map(|r| query_features(kind, &r.spec, &r.optimized.plan))
        .collect();

    // Warm up the thread-local scratch so sizing is not billed.
    let _ = model.predict_features(&probes[0]).expect("warmup");

    // Single-query latency + allocations per request.
    let mut latencies_us = Vec::with_capacity(args.requests);
    let stages_pre_predict = qpp_obs::recorder().stage_summary();
    let alloc_before = ALLOC.allocation_events();
    let t0 = Instant::now();
    for i in 0..args.requests {
        let probe = &probes[i % probes.len()];
        let t = Instant::now();
        let p = model.predict_features(probe).expect("predict");
        latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(p);
    }
    let single_wall = t0.elapsed().as_secs_f64();
    let alloc_events = ALLOC.allocation_events() - alloc_before;
    let predict_stages = diff_stages(&stages_pre_predict, &qpp_obs::recorder().stage_summary());
    // The latency vector itself grows by push; discount its (amortized,
    // pre-reserved) appends are already excluded by with_capacity.
    let allocs_per_request = alloc_events as f64 / args.requests as f64;

    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = quantile(&latencies_us, 0.50);
    let p99 = quantile(&latencies_us, 0.99);

    // Batch throughput: whole micro-batches through the contiguous path.
    let specs: Vec<(&qpp_workload::QuerySpec, &qpp_engine::Plan)> = train
        .records
        .iter()
        .take(args.batch)
        .map(|r| (&r.spec, &r.optimized.plan))
        .collect();
    let rounds = (args.requests / args.batch).max(1);
    let t1 = Instant::now();
    for _ in 0..rounds {
        let preds = model.predict_batch(&specs).expect("batch");
        std::hint::black_box(preds);
    }
    let batch_wall = t1.elapsed().as_secs_f64();
    let batch_throughput = (rounds * specs.len()) as f64 / batch_wall;

    // Train-scaling sweep: fresh model per row count, eigensolve share
    // tracked so CI can gate on it staying sub-dominant.
    let sweep = run_train_sweep(&args.sweep, &config);
    for p in &sweep {
        eprintln!(
            "sweep {} rows: train_total {:.1} ms, eigensolve {:.1} ms ({:.1}%)",
            p.rows,
            p.train_total_us / 1e3,
            p.eigensolve_us / 1e3,
            p.eigensolve_share() * 100.0,
        );
    }

    // kNN scaling sweep: brute vs IVF query latency as the reference
    // grows. Brute documents the linear blow-up; IVF must stay flat-ish
    // (CI gates on the p99 ratio via --gate-knn-flat).
    let knn_sweep = run_knn_sweep(&args.knn_sweep);
    for p in &knn_sweep {
        eprintln!(
            "knn sweep {} rows: brute p99 {:.1} µs, ivf p99 {:.1} µs (nlist {}, nprobe {}, recall {:.3}, build {:.0} ms)",
            p.rows, p.brute_p99_us, p.ivf_p99_us, p.nlist, p.nprobe, p.recall_at_k, p.ivf_build_ms,
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"predict\",\n  \"train_rows\": {},\n  \"requests\": {},\n  \"single_query\": {{\n    \"p50_us\": {:.3},\n    \"p99_us\": {:.3},\n    \"throughput_per_sec\": {:.1},\n    \"allocs_per_request\": {:.4}\n  }},\n  \"batch\": {{\n    \"batch_size\": {},\n    \"throughput_per_sec\": {:.1}\n  }},\n  \"train_sweep\": {},\n  \"knn_sweep\": {},\n  \"train_stages\": {},\n  \"predict_stages\": {}\n}}\n",
        args.train,
        args.requests,
        p50,
        p99,
        args.requests as f64 / single_wall,
        allocs_per_request,
        specs.len(),
        batch_throughput,
        sweep_json(&sweep),
        knn_sweep_json(&knn_sweep),
        stages_json(&train_stages, "  "),
        stages_json(&predict_stages, "  "),
    );
    std::fs::write("BENCH_predict.json", &json).expect("write BENCH_predict.json");
    println!("{json}");
    eprintln!("wrote BENCH_predict.json");

    if let Some(max_share) = args.gate_share {
        let largest = sweep.last().expect("non-empty sweep for --gate-share");
        let share = largest.eigensolve_share();
        if share > max_share {
            eprintln!(
                "GATE FAIL: train_eigensolve is {:.1}% of train_total at {} rows (limit {:.1}%)",
                share * 100.0,
                largest.rows,
                max_share * 100.0,
            );
            std::process::exit(1);
        }
        eprintln!(
            "gate ok: eigensolve share {:.1}% <= {:.1}% at {} rows",
            share * 100.0,
            max_share * 100.0,
            largest.rows,
        );
    }

    if let Some(max_ratio) = args.gate_knn_flat {
        let first = knn_sweep
            .first()
            .expect("non-empty sweep for --gate-knn-flat");
        let last = knn_sweep
            .last()
            .expect("non-empty sweep for --gate-knn-flat");
        let ratio = last.ivf_p99_us / first.ivf_p99_us.max(1e-9);
        if ratio > max_ratio {
            eprintln!(
                "GATE FAIL: ivf p99 grew {ratio:.2}x from {} to {} rows (limit {max_ratio:.2}x)",
                first.rows, last.rows,
            );
            std::process::exit(1);
        }
        eprintln!(
            "gate ok: ivf p99 ratio {ratio:.2}x <= {max_ratio:.2}x from {} to {} rows \
             (brute grew {:.2}x)",
            first.rows,
            last.rows,
            last.brute_p99_us / first.brute_p99_us.max(1e-9),
        );
    }
}
