//! Predict-path benchmark: single-query latency quantiles, batch
//! throughput, heap allocations per request on the zero-copy data
//! plane, and qpp-obs per-stage breakdowns of both training and the
//! predict hot path. Writes `BENCH_predict.json` in the working
//! directory.
//!
//! ```text
//! cargo run --release -p qpp-bench --bin predict_bench
//! cargo run --release -p qpp-bench --bin predict_bench -- \
//!     --train 400 --requests 20000 --batch 64
//! ```

use counting_alloc::CountingAllocator;
use qpp_core::features::query_features;
use qpp_core::pipeline::collect_tpcds;
use qpp_core::{KccaPredictor, PredictorOptions};
use qpp_engine::SystemConfig;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

struct Args {
    train: usize,
    requests: usize,
    batch: usize,
    /// Training-row counts for the scaling sweep (`--sweep 400,5000,20000`).
    sweep: Vec<usize>,
    /// When set, exit non-zero if `train_eigensolve` exceeds this share
    /// of `train_total` at the largest sweep size (the CI gate).
    gate_share: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        train: 400,
        requests: 10_000,
        batch: 64,
        sweep: vec![400, 5_000, 20_000],
        gate_share: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> usize {
            argv.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{} needs a numeric value", argv[i]))
        };
        match argv[i].as_str() {
            "--train" => args.train = value(i).max(50),
            "--requests" => args.requests = value(i).max(100),
            "--batch" => args.batch = value(i).max(1),
            "--sweep" => {
                args.sweep = argv
                    .get(i + 1)
                    .map(|v| {
                        v.split(',')
                            .map(|n| {
                                n.parse::<usize>()
                                    .unwrap_or_else(|_| panic!("bad --sweep entry {n}"))
                                    .max(50)
                            })
                            .collect()
                    })
                    .unwrap_or_default();
            }
            "--gate-share" => {
                args.gate_share = Some(
                    argv.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--gate-share needs a fraction")),
                );
            }
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    args.sweep.sort_unstable();
    args
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Per-stage (hits, total_ns) deltas between two recorder summaries —
/// the exact cost of the code that ran between the two snapshots.
fn diff_stages(
    before: &[qpp_obs::StageSummary],
    after: &[qpp_obs::StageSummary],
) -> Vec<(qpp_obs::Stage, u64, u64)> {
    after
        .iter()
        .map(|a| {
            let b = before.iter().find(|b| b.stage == a.stage);
            (
                a.stage,
                a.hits - b.map_or(0, |b| b.hits),
                a.total_ns - b.map_or(0, |b| b.total_ns),
            )
        })
        .filter(|(_, hits, _)| *hits > 0)
        .collect()
}

/// Renders stage deltas as a JSON object keyed by stage name.
fn stages_json(stages: &[(qpp_obs::Stage, u64, u64)], indent: &str) -> String {
    let entries: Vec<String> = stages
        .iter()
        .map(|(stage, hits, ns)| {
            format!(
                "{indent}  \"{stage}\": {{\"hits\": {hits}, \"total_us\": {:.3}, \"mean_us\": {:.3}}}",
                *ns as f64 / 1e3,
                *ns as f64 / 1e3 / (*hits).max(1) as f64,
            )
        })
        .collect();
    format!("{{\n{}\n{indent}}}", entries.join(",\n"))
}

/// One row of the train-scaling sweep: wall-clock totals per stage for
/// a fresh model trained on `rows` queries.
struct SweepPoint {
    rows: usize,
    train_total_us: f64,
    eigensolve_us: f64,
    reduce_us: f64,
    subspace_us: f64,
    backtransform_us: f64,
}

impl SweepPoint {
    fn eigensolve_share(&self) -> f64 {
        self.eigensolve_us / self.train_total_us.max(1e-9)
    }
}

/// Trains a throwaway model per sweep size and captures the qpp-obs
/// stage deltas, isolating `train_eigensolve` and its sub-stages.
fn run_train_sweep(sweep: &[usize], config: &SystemConfig) -> Vec<SweepPoint> {
    let mut points = Vec::with_capacity(sweep.len());
    for &rows in sweep {
        eprintln!("sweep: training on {rows} queries …");
        let data = collect_tpcds(rows, 29, config, 4);
        let before = qpp_obs::recorder().stage_summary();
        let model = KccaPredictor::train(&data, PredictorOptions::default()).expect("sweep train");
        let stages = diff_stages(&before, &qpp_obs::recorder().stage_summary());
        std::hint::black_box(model);
        let us = |name: &str| -> f64 {
            stages
                .iter()
                .find(|(s, _, _)| s.name() == name)
                .map_or(0.0, |(_, _, ns)| *ns as f64 / 1e3)
        };
        points.push(SweepPoint {
            rows,
            train_total_us: us("train_total"),
            eigensolve_us: us("train_eigensolve"),
            reduce_us: us("train_eigen_reduce"),
            subspace_us: us("train_eigen_subspace"),
            backtransform_us: us("train_eigen_backtransform"),
        });
    }
    points
}

fn sweep_json(points: &[SweepPoint]) -> String {
    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"rows\": {}, \"train_total_us\": {:.3}, \"train_eigensolve_us\": {:.3}, \"eigensolve_share\": {:.4}, \"eigen_reduce_us\": {:.3}, \"eigen_subspace_us\": {:.3}, \"eigen_backtransform_us\": {:.3}}}",
                p.rows,
                p.train_total_us,
                p.eigensolve_us,
                p.eigensolve_share(),
                p.reduce_us,
                p.subspace_us,
                p.backtransform_us,
            )
        })
        .collect();
    format!("[\n{}\n  ]", entries.join(",\n"))
}

fn main() {
    let args = parse_args();
    let config = SystemConfig::neoview_4();
    eprintln!("training model on {} queries …", args.train);
    let train = collect_tpcds(args.train, 29, &config, 4);
    let stages_pre_train = qpp_obs::recorder().stage_summary();
    let model = KccaPredictor::train(&train, PredictorOptions::default()).expect("train");
    let train_stages = diff_stages(&stages_pre_train, &qpp_obs::recorder().stage_summary());
    let kind = model.options().feature_kind;

    // Pre-extract feature vectors so the benchmark times the predict
    // path alone, not plan feature extraction.
    let probes: Vec<Vec<f64>> = train // allow-vecvec: bench setup, off the timed path
        .records
        .iter()
        .map(|r| query_features(kind, &r.spec, &r.optimized.plan))
        .collect();

    // Warm up the thread-local scratch so sizing is not billed.
    let _ = model.predict_features(&probes[0]).expect("warmup");

    // Single-query latency + allocations per request.
    let mut latencies_us = Vec::with_capacity(args.requests);
    let stages_pre_predict = qpp_obs::recorder().stage_summary();
    let alloc_before = ALLOC.allocation_events();
    let t0 = Instant::now();
    for i in 0..args.requests {
        let probe = &probes[i % probes.len()];
        let t = Instant::now();
        let p = model.predict_features(probe).expect("predict");
        latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(p);
    }
    let single_wall = t0.elapsed().as_secs_f64();
    let alloc_events = ALLOC.allocation_events() - alloc_before;
    let predict_stages = diff_stages(&stages_pre_predict, &qpp_obs::recorder().stage_summary());
    // The latency vector itself grows by push; discount its (amortized,
    // pre-reserved) appends are already excluded by with_capacity.
    let allocs_per_request = alloc_events as f64 / args.requests as f64;

    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = quantile(&latencies_us, 0.50);
    let p99 = quantile(&latencies_us, 0.99);

    // Batch throughput: whole micro-batches through the contiguous path.
    let specs: Vec<(&qpp_workload::QuerySpec, &qpp_engine::Plan)> = train
        .records
        .iter()
        .take(args.batch)
        .map(|r| (&r.spec, &r.optimized.plan))
        .collect();
    let rounds = (args.requests / args.batch).max(1);
    let t1 = Instant::now();
    for _ in 0..rounds {
        let preds = model.predict_batch(&specs).expect("batch");
        std::hint::black_box(preds);
    }
    let batch_wall = t1.elapsed().as_secs_f64();
    let batch_throughput = (rounds * specs.len()) as f64 / batch_wall;

    // Train-scaling sweep: fresh model per row count, eigensolve share
    // tracked so CI can gate on it staying sub-dominant.
    let sweep = run_train_sweep(&args.sweep, &config);
    for p in &sweep {
        eprintln!(
            "sweep {} rows: train_total {:.1} ms, eigensolve {:.1} ms ({:.1}%)",
            p.rows,
            p.train_total_us / 1e3,
            p.eigensolve_us / 1e3,
            p.eigensolve_share() * 100.0,
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"predict\",\n  \"train_rows\": {},\n  \"requests\": {},\n  \"single_query\": {{\n    \"p50_us\": {:.3},\n    \"p99_us\": {:.3},\n    \"throughput_per_sec\": {:.1},\n    \"allocs_per_request\": {:.4}\n  }},\n  \"batch\": {{\n    \"batch_size\": {},\n    \"throughput_per_sec\": {:.1}\n  }},\n  \"train_sweep\": {},\n  \"train_stages\": {},\n  \"predict_stages\": {}\n}}\n",
        args.train,
        args.requests,
        p50,
        p99,
        args.requests as f64 / single_wall,
        allocs_per_request,
        specs.len(),
        batch_throughput,
        sweep_json(&sweep),
        stages_json(&train_stages, "  "),
        stages_json(&predict_stages, "  "),
    );
    std::fs::write("BENCH_predict.json", &json).expect("write BENCH_predict.json");
    println!("{json}");
    eprintln!("wrote BENCH_predict.json");

    if let Some(max_share) = args.gate_share {
        let largest = sweep.last().expect("non-empty sweep for --gate-share");
        let share = largest.eigensolve_share();
        if share > max_share {
            eprintln!(
                "GATE FAIL: train_eigensolve is {:.1}% of train_total at {} rows (limit {:.1}%)",
                share * 100.0,
                largest.rows,
                max_share * 100.0,
            );
            std::process::exit(1);
        }
        eprintln!(
            "gate ok: eigensolve share {:.1}% <= {:.1}% at {} rows",
            share * 100.0,
            max_share * 100.0,
            largest.rows,
        );
    }
}
