//! Predict-path benchmark: single-query latency quantiles, batch
//! throughput, heap allocations per request on the zero-copy data
//! plane, and qpp-obs per-stage breakdowns of both training and the
//! predict hot path. Writes `BENCH_predict.json` in the working
//! directory.
//!
//! ```text
//! cargo run --release -p qpp-bench --bin predict_bench
//! cargo run --release -p qpp-bench --bin predict_bench -- \
//!     --train 400 --requests 20000 --batch 64
//! ```

use counting_alloc::CountingAllocator;
use qpp_core::features::query_features;
use qpp_core::pipeline::collect_tpcds;
use qpp_core::{KccaPredictor, PredictorOptions};
use qpp_engine::SystemConfig;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

struct Args {
    train: usize,
    requests: usize,
    batch: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        train: 400,
        requests: 10_000,
        batch: 64,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> usize {
            argv.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{} needs a numeric value", argv[i]))
        };
        match argv[i].as_str() {
            "--train" => args.train = value(i).max(50),
            "--requests" => args.requests = value(i).max(100),
            "--batch" => args.batch = value(i).max(1),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    args
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Per-stage (hits, total_ns) deltas between two recorder summaries —
/// the exact cost of the code that ran between the two snapshots.
fn diff_stages(
    before: &[qpp_obs::StageSummary],
    after: &[qpp_obs::StageSummary],
) -> Vec<(qpp_obs::Stage, u64, u64)> {
    after
        .iter()
        .map(|a| {
            let b = before.iter().find(|b| b.stage == a.stage);
            (
                a.stage,
                a.hits - b.map_or(0, |b| b.hits),
                a.total_ns - b.map_or(0, |b| b.total_ns),
            )
        })
        .filter(|(_, hits, _)| *hits > 0)
        .collect()
}

/// Renders stage deltas as a JSON object keyed by stage name.
fn stages_json(stages: &[(qpp_obs::Stage, u64, u64)], indent: &str) -> String {
    let entries: Vec<String> = stages
        .iter()
        .map(|(stage, hits, ns)| {
            format!(
                "{indent}  \"{stage}\": {{\"hits\": {hits}, \"total_us\": {:.3}, \"mean_us\": {:.3}}}",
                *ns as f64 / 1e3,
                *ns as f64 / 1e3 / (*hits).max(1) as f64,
            )
        })
        .collect();
    format!("{{\n{}\n{indent}}}", entries.join(",\n"))
}

fn main() {
    let args = parse_args();
    let config = SystemConfig::neoview_4();
    eprintln!("training model on {} queries …", args.train);
    let train = collect_tpcds(args.train, 29, &config, 4);
    let stages_pre_train = qpp_obs::recorder().stage_summary();
    let model = KccaPredictor::train(&train, PredictorOptions::default()).expect("train");
    let train_stages = diff_stages(&stages_pre_train, &qpp_obs::recorder().stage_summary());
    let kind = model.options().feature_kind;

    // Pre-extract feature vectors so the benchmark times the predict
    // path alone, not plan feature extraction.
    let probes: Vec<Vec<f64>> = train // allow-vecvec: bench setup, off the timed path
        .records
        .iter()
        .map(|r| query_features(kind, &r.spec, &r.optimized.plan))
        .collect();

    // Warm up the thread-local scratch so sizing is not billed.
    let _ = model.predict_features(&probes[0]).expect("warmup");

    // Single-query latency + allocations per request.
    let mut latencies_us = Vec::with_capacity(args.requests);
    let stages_pre_predict = qpp_obs::recorder().stage_summary();
    let alloc_before = ALLOC.allocation_events();
    let t0 = Instant::now();
    for i in 0..args.requests {
        let probe = &probes[i % probes.len()];
        let t = Instant::now();
        let p = model.predict_features(probe).expect("predict");
        latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(p);
    }
    let single_wall = t0.elapsed().as_secs_f64();
    let alloc_events = ALLOC.allocation_events() - alloc_before;
    let predict_stages = diff_stages(&stages_pre_predict, &qpp_obs::recorder().stage_summary());
    // The latency vector itself grows by push; discount its (amortized,
    // pre-reserved) appends are already excluded by with_capacity.
    let allocs_per_request = alloc_events as f64 / args.requests as f64;

    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = quantile(&latencies_us, 0.50);
    let p99 = quantile(&latencies_us, 0.99);

    // Batch throughput: whole micro-batches through the contiguous path.
    let specs: Vec<(&qpp_workload::QuerySpec, &qpp_engine::Plan)> = train
        .records
        .iter()
        .take(args.batch)
        .map(|r| (&r.spec, &r.optimized.plan))
        .collect();
    let rounds = (args.requests / args.batch).max(1);
    let t1 = Instant::now();
    for _ in 0..rounds {
        let preds = model.predict_batch(&specs).expect("batch");
        std::hint::black_box(preds);
    }
    let batch_wall = t1.elapsed().as_secs_f64();
    let batch_throughput = (rounds * specs.len()) as f64 / batch_wall;

    let json = format!(
        "{{\n  \"bench\": \"predict\",\n  \"train_rows\": {},\n  \"requests\": {},\n  \"single_query\": {{\n    \"p50_us\": {:.3},\n    \"p99_us\": {:.3},\n    \"throughput_per_sec\": {:.1},\n    \"allocs_per_request\": {:.4}\n  }},\n  \"batch\": {{\n    \"batch_size\": {},\n    \"throughput_per_sec\": {:.1}\n  }},\n  \"train_stages\": {},\n  \"predict_stages\": {}\n}}\n",
        args.train,
        args.requests,
        p50,
        p99,
        args.requests as f64 / single_wall,
        allocs_per_request,
        specs.len(),
        batch_throughput,
        stages_json(&train_stages, "  "),
        stages_json(&predict_stages, "  "),
    );
    std::fs::write("BENCH_predict.json", &json).expect("write BENCH_predict.json");
    println!("{json}");
    eprintln!("wrote BENCH_predict.json");
}
