//! Load generator for the online prediction service: drives qpp-serve
//! with concurrent closed-loop producers and reports throughput,
//! latency quantiles, batching efficiency, and shed load.
//!
//! ```text
//! cargo run --release -p qpp-bench --bin loadgen
//! cargo run --release -p qpp-bench --bin loadgen -- \
//!     --requests 50000 --producers 16 --workers 8 --batch 32 \
//!     --queue 256 --deadline-ms 2000
//! ```

use qpp_core::baselines::OptimizerCostModel;
use qpp_core::pipeline::collect_tpcds;
use qpp_core::{FeatureKind, KccaPredictor, PredictorOptions};
use qpp_engine::SystemConfig;
use qpp_serve::{
    ModelKey, ModelRegistry, PredictRequest, PredictionService, QppError, ServeOptions,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    requests: usize,
    producers: usize,
    workers: usize,
    batch: usize,
    queue: usize,
    deadline: Duration,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 20_000,
        producers: 8,
        workers: 4,
        batch: 16,
        queue: 512,
        deadline: Duration::from_secs(5),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> usize {
            argv.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{} needs a numeric value", argv[i]))
        };
        match argv[i].as_str() {
            "--requests" => args.requests = value(i),
            "--producers" => args.producers = value(i).max(1),
            "--workers" => args.workers = value(i),
            "--batch" => args.batch = value(i).max(1),
            "--queue" => args.queue = value(i).max(1),
            "--deadline-ms" => args.deadline = Duration::from_millis(value(i) as u64),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    args
}

fn main() {
    let args = parse_args();
    let config = SystemConfig::neoview_4();
    eprintln!("training serving model …");
    let train = collect_tpcds(400, 31, &config, 4);
    let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
    let fallback = OptimizerCostModel::train(&train).unwrap();

    let key = ModelKey::new(config.name.clone(), FeatureKind::QueryPlan);
    let registry = Arc::new(ModelRegistry::new());
    registry.install(key.clone(), model, fallback);

    let service = Arc::new(PredictionService::start(
        Arc::clone(&registry),
        ServeOptions {
            workers: args.workers,
            queue_capacity: args.queue,
            max_batch: args.batch,
            ..ServeOptions::default()
        },
    ));

    let live = collect_tpcds(200, 93, &config, 4);
    let per_producer = args.requests.div_ceil(args.producers);
    eprintln!(
        "load: {} requests via {} producers -> {} workers (batch {}, queue {}, deadline {:?})",
        per_producer * args.producers,
        args.producers,
        args.workers,
        args.batch,
        args.queue,
        args.deadline,
    );

    let t0 = Instant::now();
    let producers: Vec<_> = (0..args.producers)
        .map(|p| {
            let service = Arc::clone(&service);
            let live = live.clone();
            let key = key.clone();
            let deadline = args.deadline;
            std::thread::spawn(move || {
                let mut shed = 0usize;
                for i in 0..per_producer {
                    let r = &live.records[(p * per_producer + i) % live.records.len()];
                    let outcome = service.submit(PredictRequest {
                        key: key.clone(),
                        tenant: qpp_serve::DEFAULT_TENANT,
                        spec: r.spec.clone(),
                        plan: r.optimized.plan.clone(),
                        deadline,
                    });
                    match outcome {
                        Ok(_) => {}
                        Err(QppError::QueueFull { .. }) => shed += 1,
                        Err(e) => panic!("load generator hit {e}"),
                    }
                }
                shed
            })
        })
        .collect();

    let shed: usize = producers.into_iter().map(|h| h.join().unwrap()).sum();
    let wall = t0.elapsed();

    let snap = service.stats();
    println!("{snap}");
    println!(
        "wall {:.2}s | offered {} | answered {} | shed {} ({:.2}%)",
        wall.as_secs_f64(),
        per_producer * args.producers,
        snap.completed + snap.fallbacks,
        shed,
        100.0 * shed as f64 / (per_producer * args.producers) as f64,
    );
}
