#!/usr/bin/env bash
# Local CI: formatting, lints, and the full test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (QPP_THREADS=1)"
QPP_THREADS=1 cargo test -q --workspace

echo "==> cargo test (default threads)"
cargo test -q --workspace

echo "CI OK"
