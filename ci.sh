#!/usr/bin/env bash
# Local CI: formatting, lints, and the full test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> zero-copy gate: no new Vec<Vec<f64>> in library code"
# The data plane operates on contiguous matrices + views; nested row
# vectors must not creep back in. Test fixtures opt out with a
# same-line `// allow-vecvec` comment.
matches=$(grep -rn 'Vec<Vec<f64>>' crates/*/src --include='*.rs' | grep -v 'allow-vecvec' || true)
if [ -n "$matches" ]; then
    echo "Vec<Vec<f64>> found in library code (annotate test fixtures with // allow-vecvec):"
    echo "$matches"
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (QPP_THREADS=1)"
QPP_THREADS=1 cargo test -q --workspace

echo "==> cargo test (default threads)"
cargo test -q --workspace

echo "CI OK"
