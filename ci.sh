#!/usr/bin/env bash
# Local CI: formatting, lints, and the full test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> qpp-lint: workspace invariants (hot path, determinism, error handling)"
# Enforces no-vecvec (superseding the old Vec<Vec<f64>> grep gate),
# no-alloc-hot-path, no-unordered-float-reduce, no-hashmap-iter-order,
# no-unwrap-lib and no-wallclock-in-model. Rationale and fixes:
#   cargo run -p qpp-lint -- --explain <rule>
cargo run -q -p qpp-lint --release -- crates

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (QPP_THREADS=1)"
QPP_THREADS=1 cargo test -q --workspace

echo "==> cargo test (default threads)"
cargo test -q --workspace

echo "CI OK"
