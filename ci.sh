#!/usr/bin/env bash
# Local CI: formatting, lints, and the full test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> qpp-lint: workspace invariants (hot path, determinism, error handling)"
# Enforces no-vecvec (superseding the old Vec<Vec<f64>> grep gate),
# no-alloc-hot-path, no-unordered-float-reduce, no-hashmap-iter-order,
# no-unwrap-lib, no-wallclock-in-model, plus the workspace-level passes
# added with the call graph: hot-path propagation (the alloc/wallclock/
# unwrap rules fire in any function reachable from a hot-path root),
# atomic-ordering-audit, and lock-order cycle detection. Rationale and
# fixes: cargo run -p qpp-lint -- --explain <rule>
cargo run -q -p qpp-lint --release -- crates
# Machine-readable run (graph stats + provenance) published next to the
# BENCH_*.json artifacts; the human gate above already failed on any
# violation, so this run must agree.
cargo run -q -p qpp-lint --release -- --json crates > lint.json
grep -q '"version": 2' lint.json || { echo "lint.json: expected --json v2 output"; exit 1; }
grep -q '"count": 0' lint.json || { echo "lint.json: violations leaked past the human gate"; exit 1; }
if grep -rq "allow(atomic-ordering-audit)" --include="*.rs" crates/*/src; then
    echo "qpp-lint: an atomic-ordering-audit waiver crept in; write the // ordering: justification instead"
    exit 1
fi
echo "qpp-lint OK: workspace clean, lint.json artifact written"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (QPP_THREADS=1)"
QPP_THREADS=1 cargo test -q --workspace

echo "==> cargo test (default threads)"
cargo test -q --workspace

echo "==> obs smoke: serving example under a tight deadline exports a live trace"
# A 1µs deadline forces client-side fallbacks while the workers still
# drain every request, so the exported JSONL must show the full
# queue_wait -> worker -> predict span chain AND tagged fallbacks.
cargo build -q --release --example serving
TRACE_OUT=$(mktemp /tmp/qpp_trace.XXXXXX.jsonl)
QPP_DEMO_TRAIN=120 QPP_DEMO_REQUESTS=400 QPP_DEADLINE_US=1 \
    QPP_TRACE_OUT="$TRACE_OUT" ./target/release/examples/serving >/dev/null
for stage in queue_wait worker predict; do
    grep -q "\"stage\":\"$stage\"" "$TRACE_OUT" \
        || { echo "obs smoke: no $stage span in $TRACE_OUT"; exit 1; }
done
FALLBACKS=$(sed -n 's/.*"counter":"fallback_answers","value":\([0-9]*\).*/\1/p' "$TRACE_OUT")
if [ -z "$FALLBACKS" ] || [ "$FALLBACKS" -eq 0 ]; then
    echo "obs smoke: expected a nonzero fallback_answers counter, got '${FALLBACKS:-missing}'"
    exit 1
fi
echo "obs smoke OK: spans present, $FALLBACKS fallbacks tagged"
rm -f "$TRACE_OUT"

echo "==> adapt smoke: drifted workload triggers retrain + canary swap end to end"
# The adaptive example injects a 3x elapsed-time drift under a live
# service. Its trace dump must show the whole episode — drift mark,
# retrain span, shadow-score span — and a nonzero canary_swaps counter.
cargo build -q --release --example adaptive_serving
ADAPT_OUT=$(mktemp /tmp/qpp_adapt.XXXXXX.jsonl)
QPP_TRACE_OUT="$ADAPT_OUT" ./target/release/examples/adaptive_serving >/dev/null
for stage in drift retrain shadow_score canary_swap; do
    grep -q "\"stage\":\"$stage\"" "$ADAPT_OUT" \
        || { echo "adapt smoke: no $stage event in $ADAPT_OUT"; exit 1; }
done
SWAPS=$(sed -n 's/.*"counter":"canary_swaps","value":\([0-9]*\).*/\1/p' "$ADAPT_OUT")
if [ -z "$SWAPS" ] || [ "$SWAPS" -eq 0 ]; then
    echo "adapt smoke: expected a nonzero canary_swaps counter, got '${SWAPS:-missing}'"
    exit 1
fi
if grep -rq "qpp-lint: allow(" crates/adapt/src; then
    echo "adapt smoke: crates/adapt/src carries a lint waiver; it must be clean without opt-outs"
    exit 1
fi
echo "adapt smoke OK: drift -> retrain -> shadow_score -> canary_swap chain traced, $SWAPS swap(s)"
rm -f "$ADAPT_OUT"

echo "==> eigensolve + knn-flat gates: solver sub-dominant, IVF p99 flat"
# Two gates off one bench run. (a) The reduced-SVD eigensolver
# (DESIGN.md §14) must keep train_eigensolve under 50% of train_total
# at the largest sweep size. (b) The IVF index (DESIGN.md §17) must
# hold its query p99 within 3x from 1k to 100k reference rows — the
# sub-linear claim — while the same sweep documents the brute scan
# blowing up linearly. The run also refreshes the train_sweep and
# knn_sweep blocks of BENCH_predict.json. A smaller request count
# keeps the predict half of the bench quick — the gates only read
# the sweeps.
cargo build -q --release -p qpp-bench --bin predict_bench
./target/release/predict_bench --requests 1000 --sweep 400,5000,20000 \
    --gate-share 0.5 \
    --knn-sweep 1000,10000,100000 --gate-knn-flat 3.0 >/dev/null

echo "==> serve soak gate: multi-tenant fairness, latency, and throughput"
# The sharded serve pipeline must (a) ration completions by tenant
# weight within 10% under sustained burst overload, (b) hold the
# uncontended client-side p99 under 20 ms, and (c) clear a throughput
# floor. The floor is set well under the ~21k req/s measured on the
# 1-CPU reference box (ROADMAP's ~31k figure is from a larger machine)
# so the gate catches a pipeline regression, not machine noise.
cargo build -q --release -p qpp-bench --bin serve_bench
./target/release/serve_bench --requests 10000 \
    --gate-fairness 0.10 --gate-p99-us 20000 --gate-throughput 12000 \
    >/dev/null
[ -s BENCH_serve.json ] || { echo "serve soak: BENCH_serve.json missing"; exit 1; }
SERVE_MARKS=$(grep -rc "qpp-lint: hot-path" crates/serve/src | awk -F: '{n+=$2} END {print n}')
if [ "${SERVE_MARKS:-0}" -lt 10 ]; then
    echo "serve soak: expected >= 10 hot-path markers in crates/serve/src, found ${SERVE_MARKS:-0}"
    exit 1
fi
if grep -rq "qpp-lint: allow(" crates/serve/src; then
    echo "serve soak: crates/serve/src carries a lint waiver; it must be clean without opt-outs"
    exit 1
fi
echo "serve soak OK: fairness/p99/throughput gates passed, $SERVE_MARKS hot-path markers pinned"

echo "==> equivalence gate: reduced vs dense CCA paths must actually run"
# The svd_equivalence suite is the proof that the fast path matches the
# dense reference; a filtered-out or silently skipped run must fail CI.
EQUIV_OUT=$(cargo test -q -p qpp-ml --test svd_equivalence 2>&1) || {
    echo "$EQUIV_OUT"; exit 1; }
EQUIV_PASSED=$(echo "$EQUIV_OUT" | sed -n 's/.*test result: ok\. \([0-9]*\) passed.*/\1/p' | head -1)
if [ -z "$EQUIV_PASSED" ] || [ "$EQUIV_PASSED" -lt 6 ]; then
    echo "equivalence gate: expected >= 6 svd_equivalence tests to run, got '${EQUIV_PASSED:-none}'"
    exit 1
fi
echo "equivalence gate OK: $EQUIV_PASSED reduced-vs-dense tests ran"

echo "==> ann equivalence gate: IVF vs brute bitwise suite must actually run"
# The ann_equivalence suite proves the IVF index returns bitwise-
# identical neighbors to the serial brute scan (exhaustive probe, ties,
# non-finite rows, thread counts, predictor wiring); a filtered-out or
# silently skipped run must fail CI.
ANN_OUT=$(cargo test -q -p qpp-ml --test ann_equivalence 2>&1) || {
    echo "$ANN_OUT"; exit 1; }
ANN_PASSED=$(echo "$ANN_OUT" | sed -n 's/.*test result: ok\. \([0-9]*\) passed.*/\1/p' | head -1)
if [ -z "$ANN_PASSED" ] || [ "$ANN_PASSED" -lt 7 ]; then
    echo "ann equivalence gate: expected >= 7 ann_equivalence tests to run, got '${ANN_PASSED:-none}'"
    exit 1
fi
echo "ann equivalence gate OK: $ANN_PASSED ivf-vs-brute tests ran"

echo "CI OK"
