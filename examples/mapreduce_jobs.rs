//! The paper's §VIII generalization: the same KCCA methodology applied
//! to MapReduce jobs — "only the feature vectors need to be customized
//! for each system."
//!
//! ```text
//! cargo run --release --example mapreduce_jobs
//! ```

use qpp::mapreduce::{ClusterConfig, JobPredictor};
use qpp::ml::predictive_risk;

fn main() {
    let cluster = ClusterConfig::small();
    println!(
        "calibrating on {}: running 500 training jobs …",
        cluster.name
    );
    let mut generator = qpp::mapreduce::job::JobGenerator::new(2009);
    let train_jobs = generator.generate(500);
    let (model, _) = JobPredictor::train(&train_jobs, &cluster, 3).expect("training");

    println!("predicting 10 unseen jobs:\n");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "template", "input", "pred time", "actual time", "pred shuffle", "actual shuffle"
    );
    let mut predicted = Vec::new();
    let mut actual = Vec::new();
    let test_jobs = generator.generate(60);
    for job in test_jobs.iter().take(10) {
        let p = model.predict(job).expect("prediction");
        let a = qpp::mapreduce::cluster::run(job, &cluster);
        println!(
            "{:<10} {:>8.1}GB {:>11.1}s {:>11.1}s {:>12.2}GB {:>12.2}GB",
            job.template.name(),
            job.input_bytes / 1e9,
            p.outcome.elapsed_seconds,
            a.elapsed_seconds,
            p.outcome.shuffle_bytes / 1e9,
            a.shuffle_bytes / 1e9,
        );
    }
    for job in &test_jobs {
        predicted.push(model.predict(job).unwrap().outcome.elapsed_seconds);
        actual.push(qpp::mapreduce::cluster::run(job, &cluster).elapsed_seconds);
    }
    println!(
        "\nelapsed-time predictive risk over {} test jobs: {:.3}",
        test_jobs.len(),
        predictive_risk(&predicted, &actual)
    );
    println!("(same KCCA code path as the database predictor — only the features changed)");
}
