//! Closed-loop online serving demo: a model registry feeding a
//! batched worker pool, with a hot-swap landing mid-run.
//!
//! Eight producers push 10,000 prediction requests through a 4-worker
//! service; halfway through, a freshly retrained model is hot-swapped
//! into the registry without dropping, failing, or duplicating a
//! single request. Ends with the service stats snapshot.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use qpp::core::baselines::OptimizerCostModel;
use qpp::core::pipeline::collect_tpcds;
use qpp::core::{FeatureKind, KccaPredictor, PredictorOptions};
use qpp::engine::SystemConfig;
use qpp::serve::{ModelKey, ModelRegistry, PredictRequest, PredictionService, ServeOptions};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const PRODUCERS: usize = 8;
const PER_PRODUCER: usize = 1_250; // 10,000 requests total

fn main() {
    let config = SystemConfig::neoview_4();
    println!("training two model generations …");
    let train_v1 = collect_tpcds(400, 11, &config, 4);
    let train_v2 = collect_tpcds(400, 23, &config, 4);
    let model_v1 = KccaPredictor::train(&train_v1, PredictorOptions::default()).unwrap();
    let model_v2 = KccaPredictor::train(&train_v2, PredictorOptions::default()).unwrap();
    let fallback_v1 = OptimizerCostModel::train(&train_v1).unwrap();
    let fallback_v2 = OptimizerCostModel::train(&train_v2).unwrap();

    let key = ModelKey::new(config.name.clone(), FeatureKind::QueryPlan);
    let registry = Arc::new(ModelRegistry::new());
    let v1 = registry.install(key.clone(), model_v1, fallback_v1);
    println!("installed {key} v{v1}");

    let service = Arc::new(PredictionService::start(
        Arc::clone(&registry),
        ServeOptions {
            workers: 4,
            queue_capacity: 512,
            max_batch: 16,
            ..ServeOptions::default()
        },
    ));

    // Fresh queries the models have never seen.
    let live = collect_tpcds(200, 77, &config, 4);
    println!(
        "serving {} requests from {PRODUCERS} producers …",
        PRODUCERS * PER_PRODUCER
    );

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let service = Arc::clone(&service);
            let live = live.clone();
            let key = key.clone();
            std::thread::spawn(move || {
                let mut by_version: BTreeMap<u64, usize> = BTreeMap::new();
                let mut failed = 0usize;
                for i in 0..PER_PRODUCER {
                    let r = &live.records[(p * PER_PRODUCER + i) % live.records.len()];
                    let outcome = service.submit(PredictRequest {
                        key: key.clone(),
                        spec: r.spec.clone(),
                        plan: r.optimized.plan.clone(),
                        deadline: Duration::from_secs(5),
                    });
                    match outcome {
                        Ok(resp) => *by_version.entry(resp.model_version).or_default() += 1,
                        Err(_) => failed += 1,
                    }
                }
                (by_version, failed)
            })
        })
        .collect();

    // Hot-swap a retrained model while the producers hammer the service.
    std::thread::sleep(Duration::from_millis(150));
    let v2 = registry.install(key.clone(), model_v2, fallback_v2);
    println!("hot-swapped {key} to v{v2} mid-run");

    let mut by_version: BTreeMap<u64, usize> = BTreeMap::new();
    let mut failed = 0usize;
    for handle in producers {
        let (versions, f) = handle.join().unwrap();
        failed += f;
        for (v, n) in versions {
            *by_version.entry(v).or_default() += n;
        }
    }

    let answered: usize = by_version.values().sum();
    println!("\nanswered {answered} requests, {failed} failed");
    for (v, n) in &by_version {
        println!("  model v{v}: {n} answers");
    }
    assert_eq!(answered, PRODUCERS * PER_PRODUCER, "every request answered");
    assert_eq!(failed, 0, "no request failed across the hot swap");

    println!("\nservice stats:\n{}", service.stats());
}
