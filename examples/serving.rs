//! Closed-loop online serving demo: a model registry feeding a
//! batched worker pool, with a hot-swap landing mid-run.
//!
//! Eight producers push prediction requests through a 4-worker
//! service; halfway through, a freshly retrained model is hot-swapped
//! into the registry without dropping, failing, or duplicating a
//! single request. Ends with the service stats snapshot and — when
//! `QPP_TRACE_OUT` is set — a JSONL dump of the qpp-obs event ring.
//!
//! Environment knobs (all optional, used by `ci.sh`'s obs smoke gate):
//! - `QPP_DEMO_TRAIN`: training-set size per model generation (400)
//! - `QPP_DEMO_REQUESTS`: total requests across producers (10000)
//! - `QPP_DEADLINE_US`: per-request deadline in microseconds (5s);
//!   tight values force deadline fallbacks, which the trace tags
//! - `QPP_TRACE_OUT`: path to write the JSONL trace + counters to
//!
//! ```text
//! cargo run --release --example serving
//! QPP_DEADLINE_US=50 QPP_TRACE_OUT=trace.jsonl \
//!     cargo run --release --example serving
//! ```

use qpp::core::baselines::OptimizerCostModel;
use qpp::core::pipeline::collect_tpcds;
use qpp::core::{FeatureKind, KccaPredictor, PredictorOptions};
use qpp::engine::SystemConfig;
use qpp::obs::{EventKind, Stage};
use qpp::serve::{ModelKey, ModelRegistry, PredictRequest, PredictionService, ServeOptions};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const PRODUCERS: usize = 8;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let demo_train = env_usize("QPP_DEMO_TRAIN", 400).max(50);
    let per_producer = (env_usize("QPP_DEMO_REQUESTS", 10_000) / PRODUCERS).max(1);
    let deadline = Duration::from_micros(env_usize("QPP_DEADLINE_US", 5_000_000) as u64);
    let trace_out = std::env::var("QPP_TRACE_OUT").ok();

    let config = SystemConfig::neoview_4();
    println!("training two model generations …");
    let train_v1 = collect_tpcds(demo_train, 11, &config, 4);
    let train_v2 = collect_tpcds(demo_train, 23, &config, 4);
    let model_v1 = KccaPredictor::train(&train_v1, PredictorOptions::default()).unwrap();
    let model_v2 = KccaPredictor::train(&train_v2, PredictorOptions::default()).unwrap();
    let fallback_v1 = OptimizerCostModel::train(&train_v1).unwrap();
    let fallback_v2 = OptimizerCostModel::train(&train_v2).unwrap();

    let key = ModelKey::new(config.name.clone(), FeatureKind::QueryPlan);
    let registry = Arc::new(ModelRegistry::new());
    let v1 = registry.install(key.clone(), model_v1, fallback_v1);
    println!("installed {key} v{v1}");

    let service = Arc::new(PredictionService::start(
        Arc::clone(&registry),
        ServeOptions {
            workers: 4,
            queue_capacity: 512,
            max_batch: 16,
            ..ServeOptions::default()
        },
    ));

    // Fresh queries the models have never seen.
    let live = collect_tpcds(200.min(demo_train), 77, &config, 4);
    println!(
        "serving {} requests from {PRODUCERS} producers …",
        PRODUCERS * per_producer
    );

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let service = Arc::clone(&service);
            let live = live.clone();
            let key = key.clone();
            std::thread::spawn(move || {
                let mut by_version: BTreeMap<u64, usize> = BTreeMap::new();
                let mut failed = 0usize;
                for i in 0..per_producer {
                    let r = &live.records[(p * per_producer + i) % live.records.len()];
                    let outcome = service.submit(PredictRequest {
                        key: key.clone(),
                        tenant: qpp::serve::DEFAULT_TENANT,
                        spec: r.spec.clone(),
                        plan: r.optimized.plan.clone(),
                        deadline,
                    });
                    match outcome {
                        Ok(resp) => *by_version.entry(resp.model_version).or_default() += 1,
                        Err(_) => failed += 1,
                    }
                }
                (by_version, failed)
            })
        })
        .collect();

    // Hot-swap a retrained model while the producers hammer the service.
    std::thread::sleep(Duration::from_millis(150));
    let v2 = registry.install(key.clone(), model_v2, fallback_v2);
    println!("hot-swapped {key} to v{v2} mid-run");

    let mut by_version: BTreeMap<u64, usize> = BTreeMap::new();
    let mut failed = 0usize;
    for handle in producers {
        let (versions, f) = handle.join().unwrap();
        failed += f;
        for (v, n) in versions {
            *by_version.entry(v).or_default() += n;
        }
    }

    let answered: usize = by_version.values().sum();
    println!("\nanswered {answered} requests, {failed} failed");
    for (v, n) in &by_version {
        println!("  model v{v}: {n} answers");
    }
    assert_eq!(answered, PRODUCERS * per_producer, "every request answered");
    assert_eq!(failed, 0, "no request failed across the hot swap");

    println!("\nservice stats:\n{}", service.stats());

    // Drain the workers before exporting so every queued request has
    // finished recording its spans into the ring.
    Arc::try_unwrap(service)
        .unwrap_or_else(|_| panic!("producers joined, no service clones remain"))
        .shutdown();

    let rec = qpp::obs::recorder();
    let events = rec.export();
    let complete = complete_traces(&events);
    println!(
        "\ntrace ring holds {} events; {} recent traces carry the full \
         admission -> queue_wait -> worker -> predict span chain",
        events.len(),
        complete
    );
    assert!(
        complete >= 1,
        "at least one request's full span chain must survive in the ring"
    );

    if let Some(path) = trace_out {
        let mut out = qpp::obs::to_jsonl(&events);
        out.push_str(&rec.counters_jsonl());
        std::fs::write(&path, out).unwrap();
        println!("wrote {} trace events to {path}", events.len());
    }
}

/// Counts trace IDs whose admission, queue-wait, worker, and predict
/// spans all survive in the (bounded, lap-prone) event ring.
fn complete_traces(events: &[qpp::obs::Event]) -> usize {
    let mut stages_by_trace: BTreeMap<u64, u8> = BTreeMap::new();
    for e in events {
        if e.trace_id == 0 || e.kind != EventKind::Span {
            continue;
        }
        let bit = match e.stage {
            Stage::Admission => 1u8,
            Stage::QueueWait => 2,
            Stage::Worker => 4,
            Stage::Predict => 8,
            _ => continue,
        };
        *stages_by_trace.entry(e.trace_id).or_default() |= bit;
    }
    stages_by_trace.values().filter(|&&m| m == 0b1111).count()
}
