//! Closed-loop *adaptive* serving demo: the workload drifts under a
//! live service, and the continuous-learning control plane notices,
//! retrains in the background, shadow-scores the candidate, and
//! hot-swaps it — without a human or a restart.
//!
//! Three traffic phases run through a real `qpp-serve` worker pool:
//!
//! 1. **Stable**: traffic matches the training distribution; the drift
//!    detector calibrates quietly.
//! 2. **Drifted**: the simulated system slows down (`QPP_ADAPT_DRIFT`×
//!    on elapsed time — stale statistics, a hardware downgrade, a noisy
//!    neighbor). Per-template elapsed-time error rises, drift is
//!    declared, and the background worker retrains + canaries a
//!    candidate on the sliding window.
//! 3. **Recovery**: post-swap traffic shows the error back near the
//!    calibration floor; the post-swap watch passes without demotion.
//!
//! Environment knobs (all optional, used by `ci.sh`'s adapt gate):
//! - `QPP_ADAPT_TRAIN`: training-set / sliding-window size (120)
//! - `QPP_ADAPT_LIVE`: drifted-phase traffic size (280)
//! - `QPP_ADAPT_DRIFT`: elapsed-time drift multiplier (3.0)
//! - `QPP_TRACE_OUT`: path for the JSONL event + counter dump
//!
//! ```text
//! cargo run --release --example adaptive_serving
//! QPP_TRACE_OUT=adapt.jsonl cargo run --release --example adaptive_serving
//! ```

use qpp::adapt::{AdaptOptions, AdaptWorker, AdaptiveController, DriftConfig};
use qpp::core::baselines::OptimizerCostModel;
use qpp::core::pipeline::collect_tpcds;
use qpp::core::retrain::SlidingWindowPredictor;
use qpp::core::{Dataset, FeatureKind, KccaPredictor, PredictorOptions};
use qpp::engine::SystemConfig;
use qpp::obs::{EventKind, Stage};
use qpp::serve::{
    CompletionObserver, ModelKey, ModelRegistry, PredictRequest, PredictionService, ServeOptions,
};
use std::sync::Arc;
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Replays a dataset's records as live traffic: submit, then report
/// the "executed" outcome back through the completion hook. Returns
/// the mean absolute log-ratio error on elapsed time.
fn replay(
    service: &PredictionService,
    key: &ModelKey,
    traffic: &Dataset,
    deadline: Duration,
) -> f64 {
    let mut err_sum = 0.0;
    let mut n = 0usize;
    for record in &traffic.records {
        let response = service
            .submit(PredictRequest {
                key: key.clone(),
                tenant: qpp::serve::DEFAULT_TENANT,
                spec: record.spec.clone(),
                plan: record.optimized.plan.clone(),
                deadline,
            })
            .expect("request answered");
        service.observe_completion(record, &response);
        let errors = qpp::adapt::log_ratio_errors(&response.prediction.metrics, &record.metrics);
        err_sum += errors[0];
        n += 1;
    }
    err_sum / n.max(1) as f64
}

fn main() {
    let train_n = env_usize("QPP_ADAPT_TRAIN", 120).max(50);
    let live_n = env_usize("QPP_ADAPT_LIVE", 280).max(120);
    let drift = env_f64("QPP_ADAPT_DRIFT", 3.0);
    let trace_out = std::env::var("QPP_TRACE_OUT").ok();
    let deadline = Duration::from_secs(5);

    let stable_cfg = SystemConfig::neoview_4();
    let drifted_cfg = stable_cfg.clone().with_drift(drift);

    println!("training the incumbent on {train_n} stable queries …");
    let train = collect_tpcds(train_n, 41, &stable_cfg, 4);
    let options = PredictorOptions::default();
    let incumbent = KccaPredictor::train(&train, options).expect("train incumbent");
    let fallback = OptimizerCostModel::train(&train).expect("train fallback");

    let key = ModelKey::new(stable_cfg.name.clone(), FeatureKind::QueryPlan);
    let registry = Arc::new(ModelRegistry::new());
    let v1 = registry.install(key.clone(), incumbent, fallback);
    println!("installed {key} v{v1}");

    let service = PredictionService::start(
        Arc::clone(&registry),
        ServeOptions {
            workers: 2,
            queue_capacity: 256,
            max_batch: 8,
            ..ServeOptions::default()
        },
    );

    // Wire the control plane: window seeded with the training set,
    // retrain released once the window has turned over to the drifted
    // regime.
    let window = SlidingWindowPredictor::new(train.clone(), train_n, usize::MAX, options);
    let controller = Arc::new(AdaptiveController::new(
        Arc::clone(&registry),
        key.clone(),
        window,
        AdaptOptions {
            drift: DriftConfig {
                warmup: 40,
                ..DriftConfig::default()
            },
            retrain_delay: train_n,
            ..AdaptOptions::default()
        },
    ));
    service.set_completion_observer(Arc::clone(&controller) as Arc<dyn CompletionObserver>);
    let worker = AdaptWorker::spawn(Arc::clone(&controller));

    // Phase 1: stable traffic calibrates the detector.
    println!("\nphase 1: stable traffic …");
    let stable_err = replay(
        &service,
        &key,
        &collect_tpcds(60, 42, &stable_cfg, 4),
        deadline,
    );
    println!("  mean elapsed-time error {stable_err:.3}");

    // Phase 2: the system drifts. Keep serving until the control plane
    // has swapped a retrained candidate in (bounded number of rounds).
    println!("phase 2: workload drifts (elapsed ×{drift}) …");
    let mut drifted_err = 0.0;
    let mut rounds = 0usize;
    for seed in [43u64, 44, 45, 46, 47, 48] {
        let traffic = collect_tpcds(live_n, seed, &drifted_cfg, 4);
        let err = replay(&service, &key, &traffic, deadline);
        if rounds == 0 {
            drifted_err = err;
        }
        rounds += 1;
        if controller.stats().canary_swaps.get() >= 1 {
            break;
        }
        // Give the background worker a moment to finish an in-flight
        // retrain before deciding to push another round of traffic.
        std::thread::sleep(Duration::from_millis(100));
        if controller.stats().canary_swaps.get() >= 1 {
            break;
        }
    }
    println!(
        "  mean elapsed-time error {drifted_err:.3} (first drifted round, {rounds} rounds served)"
    );

    let stats = controller.stats();
    println!(
        "  drift signals {} | retrains {} | shadow evals {} | swaps {} | rejections {}",
        stats.drift_signals.get(),
        stats.retrains.get(),
        stats.shadow_evaluations.get(),
        stats.canary_swaps.get(),
        stats.canary_rejections.get(),
    );
    assert!(stats.drift_signals.get() >= 1, "drift must be declared");
    assert!(stats.retrains.get() >= 1, "a retrain must have run");
    assert!(
        stats.canary_swaps.get() >= 1,
        "a candidate must have been swapped in"
    );
    let v2 = registry.current_version(&key).expect("model installed");
    assert!(v2 > v1, "the registry must hold the canary's generation");
    println!("  canary swapped in as v{v2}");

    // Phase 3: recovery — the swapped-in model serves drifted traffic
    // accurately and the post-swap watch finds no regression.
    println!("phase 3: recovery traffic …");
    let recovery_err = replay(
        &service,
        &key,
        &collect_tpcds(60, 49, &drifted_cfg, 4),
        deadline,
    );
    println!("  mean elapsed-time error {recovery_err:.3}");
    assert!(
        recovery_err < drifted_err,
        "post-swap error {recovery_err:.3} must be below the drifted error {drifted_err:.3}"
    );
    assert_eq!(registry.demote_count(), 0, "no kill-switch demotion");

    // Per-template error ledger from the tracker.
    println!("\nper-template elapsed-time error (top 5 by count):");
    let mut rows = controller.tracker().template_snapshot();
    rows.sort_by_key(|row| std::cmp::Reverse(row.count));
    for row in rows.iter().take(5) {
        println!(
            "  {:<28} n={:<4} elapsed err {:.3} overall {:.3}",
            row.template, row.count, row.mean[0], row.overall
        );
    }

    let snapshot = service.stats();
    println!("\nservice stats:\n{snapshot}");
    assert!(snapshot.observed_completions > 0);

    worker.shutdown();
    service.shutdown();

    // The whole adaptation episode must be reconstructible from the
    // trace ring: drift mark → retrain span → shadow-score span →
    // canary-swap mark.
    let recorder = qpp::obs::recorder();
    let events = recorder.export();
    let saw =
        |stage: Stage, kind: EventKind| events.iter().any(|e| e.stage == stage && e.kind == kind);
    assert!(saw(Stage::Drift, EventKind::Mark), "drift mark in ring");
    assert!(saw(Stage::Retrain, EventKind::Span), "retrain span in ring");
    assert!(
        saw(Stage::ShadowScore, EventKind::Span),
        "shadow-score span in ring"
    );
    assert!(
        saw(Stage::CanarySwap, EventKind::Mark),
        "canary-swap mark in ring"
    );
    println!(
        "trace ring holds {} events including the full drift → retrain → \
         shadow_score → canary_swap chain",
        events.len()
    );

    if let Some(path) = trace_out {
        let mut out = qpp::obs::to_jsonl(&events);
        out.push_str(&recorder.counters_jsonl());
        out.push_str(&controller.stats().counters_jsonl());
        std::fs::write(&path, out).expect("write trace");
        println!("wrote {} trace events to {path}", events.len());
    }
}
