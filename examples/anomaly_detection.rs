//! Prediction confidence and anomalous-query flagging (paper §VII-C.3):
//! "we can use Euclidean distance from the three neighbors as a measure
//! of confidence and … identify queries whose performance predictions
//! may be less accurate."
//!
//! ```text
//! cargo run --release --example anomaly_detection
//! ```

use qpp::core::pipeline::collect_tpcds;
use qpp::core::{KccaPredictor, PredictorOptions};
use qpp::engine::SystemConfig;

fn main() {
    let config = SystemConfig::neoview_4();
    println!("calibrating predictor …");
    let train = collect_tpcds(1500, 77, &config, 4);
    let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();

    let test = collect_tpcds(300, 787, &config, 4);
    let preds = model.predict_dataset(&test).unwrap();

    // Split test queries by confidence and compare achieved accuracy:
    // predictions for well-supported queries should be measurably
    // tighter than for anomalous ones.
    let mut confident_errs = Vec::new();
    let mut anomalous_errs = Vec::new();
    let distance_threshold = 0.8;
    for (p, r) in preds.iter().zip(test.records.iter()) {
        let rel_err = (p.metrics.elapsed_seconds - r.metrics.elapsed_seconds).abs()
            / r.metrics.elapsed_seconds.max(1e-9);
        if p.is_anomalous(distance_threshold, 1e-3) {
            anomalous_errs.push(rel_err);
        } else {
            confident_errs.push(rel_err);
        }
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        if v.is_empty() {
            return f64::NAN;
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let mc = median(&mut confident_errs);
    let ma = median(&mut anomalous_errs);
    println!(
        "\nconfident queries  (distance <= {distance_threshold}): {:>4}   median relative error {:.0}%",
        confident_errs.len(),
        mc * 100.0
    );
    println!(
        "anomalous queries  (distance >  {distance_threshold}): {:>4}   median relative error {:.0}%",
        anomalous_errs.len(),
        ma * 100.0
    );
    println!(
        "\nthe flag works when anomalous errors exceed confident ones: {}",
        if ma > mc {
            "YES"
        } else {
            "no (try more training data)"
        }
    );

    // A completely foreign workload shape: kernel similarity collapses,
    // which is the second (and stronger) anomaly signal.
    let weird_features = vec![300.0; qpp::core::features::PlanFeatures::DIM];
    let p = model.predict_features(&weird_features).unwrap();
    println!(
        "\nout-of-distribution probe: kernel similarity {:.2e} → anomalous = {}",
        p.max_kernel_similarity,
        p.is_anomalous(distance_threshold, 1e-3)
    );
}
