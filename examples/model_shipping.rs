//! The deployment flow of the paper's Fig. 1: the vendor trains
//! per-configuration models on calibration workloads, serializes them,
//! and ships them to customer sites — where predictions run with no
//! training infrastructure at all.
//!
//! ```text
//! cargo run --release --example model_shipping
//! ```

use qpp::core::model_io;
use qpp::core::pipeline::collect_tpcds;
use qpp::core::{KccaPredictor, PredictorOptions};
use qpp::engine::{optimize, Catalog, SystemConfig};
use qpp::workload::WorkloadGenerator;

fn main() {
    let model_path = std::env::temp_dir().join("qpp_neoview4_model.json");

    // ---- Vendor site -------------------------------------------------
    let config = SystemConfig::neoview_4();
    println!("[vendor] calibrating on {} …", config.name);
    let train = collect_tpcds(1200, 2025, &config, 4);
    let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
    model_io::save(&model, &model_path).expect("model serializes");
    let bytes = std::fs::metadata(&model_path).unwrap().len();
    println!(
        "[vendor] shipped model to {} ({:.1} MiB)",
        model_path.display(),
        bytes as f64 / (1024.0 * 1024.0)
    );

    // ---- Customer site -----------------------------------------------
    // The customer loads the model and predicts performance for their
    // own queries before running anything — even before buying the box.
    let shipped = model_io::load(&model_path).expect("model loads");
    println!(
        "[customer] loaded model trained on {} queries",
        shipped.training_size()
    );

    let mut generator = WorkloadGenerator::tpcds(1.0, 99_999);
    let catalog = Catalog::new(generator.schema().clone());
    println!("\n[customer] what-if: predicted runtimes for 5 planned queries");
    for _ in 0..5 {
        let q = generator.generate_one();
        let plan = optimize(&q, &catalog, &config);
        let p = shipped.predict(&q, &plan.plan).unwrap();
        println!(
            "  {:<34} predicted {:>9.1}s, {:>12.0} records used",
            q.template, p.metrics.elapsed_seconds, p.metrics.records_used
        );
    }

    std::fs::remove_file(&model_path).ok();
}
