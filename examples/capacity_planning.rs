//! System sizing / capacity planning (paper §I): pick the smallest
//! configuration whose *predicted* makespan for a customer workload
//! meets a deadline — without ever running the workload on the
//! candidate hardware.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use qpp::core::pipeline::collect_tpcds;
use qpp::core::sizing::recommend;
use qpp::core::PredictorOptions;
use qpp::engine::SystemConfig;

fn main() {
    // The vendor has calibration datasets for each sellable
    // configuration (Fig. 1's "vendor site" training runs).
    let candidates: Vec<SystemConfig> = [4u32, 8, 16, 32]
        .into_iter()
        .map(SystemConfig::neoview_32)
        .collect();
    println!("calibrating one predictor per candidate configuration …");
    let calibrated: Vec<_> = candidates
        .iter()
        .map(|cfg| (collect_tpcds(900, 31, cfg, 4), cfg.clone()))
        .collect();

    // The customer's projected workload: the *plans* are produced per
    // target configuration (optimizers re-plan for different systems);
    // metrics are never consulted by the predictor.
    let deadline = 600.0; // seconds for the whole batch
    let rec = recommend(
        &calibrated,
        |cfg| collect_tpcds(40, 555, cfg, 4),
        deadline,
        PredictorOptions::default(),
    )
    .expect("sizing");

    println!("\ndeadline: {deadline:.0}s for the 40-query workload\n");
    println!(
        "{:<20} {:>14} {:>14} {:>14}",
        "configuration", "makespan (s)", "longest (s)", "msg bytes"
    );
    for (i, e) in rec.estimates.iter().enumerate() {
        let marker = if rec.recommended == Some(i) {
            "  <= recommended"
        } else {
            ""
        };
        println!(
            "{:<20} {:>14.1} {:>14.1} {:>14.2e}{marker}",
            e.config.name,
            e.predicted_makespan,
            e.predicted_longest_query,
            e.predicted_message_bytes
        );
    }
    match rec.recommended {
        Some(i) => println!(
            "\nbuy: {} ({} CPUs) — predicted to finish in {:.1}s",
            rec.estimates[i].config.name,
            rec.estimates[i].config.cpus,
            rec.estimates[i].predicted_makespan
        ),
        None => println!("\nno candidate meets the deadline; consider a larger system"),
    }
}
