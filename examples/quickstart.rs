//! Quickstart: train a KCCA performance predictor and predict the six
//! metrics of an unseen query from its optimizer plan alone.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qpp::core::pipeline::collect_tpcds;
use qpp::core::{KccaPredictor, PredictorOptions, QueryCategory};
use qpp::engine::{optimize, Catalog, PerfMetrics, SystemConfig};
use qpp::workload::{sql, WorkloadGenerator};

fn main() {
    // 1. Calibration: run a training workload on the target system
    //    (here: the simulated 4-processor machine) and keep each query's
    //    optimizer plan together with its measured metrics.
    let config = SystemConfig::neoview_4();
    println!("collecting 1500 calibration queries on {} …", config.name);
    let train = collect_tpcds(1500, 42, &config, 4);

    // 2. Train the predictor: Gaussian-kernel KCCA over (plan features,
    //    performance metrics), k-nearest-neighbor prediction in the
    //    correlated projection space.
    let model =
        KccaPredictor::train(&train, PredictorOptions::default()).expect("training succeeds");
    println!(
        "trained on {} queries; top canonical correlations: {:.3} {:.3} {:.3}",
        model.training_size(),
        model.correlations()[0],
        model.correlations()[1],
        model.correlations()[2],
    );

    // 3. A new query arrives. All we need is its SQL → optimizer plan;
    //    the query is never executed before prediction.
    let mut generator = WorkloadGenerator::tpcds(1.0, 4242);
    let query = generator.generate_one();
    let catalog = Catalog::new(generator.schema().clone());
    let optimized = optimize(&query, &catalog, &config);

    println!(
        "\nincoming query ({}):\n{}",
        query.template,
        sql::render(&query)
    );
    println!("\noptimizer plan:\n{}", optimized.plan.display_tree());

    let prediction = model.predict(&query, &optimized.plan).expect("prediction");
    println!("predicted metrics:");
    for (name, value) in PerfMetrics::NAMES.iter().zip(prediction.metrics.to_vec()) {
        println!("  {name:>18}: {value:.1}");
    }
    println!(
        "  predicted class: {}",
        QueryCategory::of(prediction.metrics.elapsed_seconds).name()
    );
    println!(
        "  confidence: neighbor distance {:.3}, kernel similarity {:.3}",
        prediction.confidence_distance, prediction.max_kernel_similarity
    );

    // 4. Ground truth for comparison (the simulator can actually run it).
    let outcome = qpp::engine::execute(&query, &optimized, generator.schema(), &config);
    println!(
        "\nactual elapsed: {:.1}s (predicted {:.1}s)",
        outcome.metrics.elapsed_seconds, prediction.metrics.elapsed_seconds
    );
}
