//! Workload management on top of predictions (paper §I), routed through
//! the multi-tenant serve gateway: per-tenant quotas and weighted fair
//! admission first, then prediction-driven admission control, kill
//! timeouts, and shortest-job-first scheduling so feathers never queue
//! behind bowling balls.
//!
//! ```text
//! cargo run --release --example workload_management
//! ```

use qpp::core::baselines::OptimizerCostModel;
use qpp::core::pipeline::collect_tpcds;
use qpp::core::workload_mgmt::{
    predicted_serial_makespan, schedule_shortest_first, AdmissionDecision, AdmissionPolicy,
};
use qpp::core::{FeatureKind, KccaPredictor, PredictorOptions};
use qpp::engine::SystemConfig;
use qpp::serve::{
    ModelKey, ModelRegistry, PredictRequest, PredictionService, QppError, ServeOptions, TenantId,
    TenantSpec,
};
use std::sync::Arc;
use std::time::Duration;

const INTERACTIVE: TenantId = TenantId(1);
const BATCH: TenantId = TenantId(2);

fn main() {
    let config = SystemConfig::neoview_4();
    println!("calibrating predictor …");
    let train = collect_tpcds(1500, 7, &config, 4);
    let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
    let fallback = OptimizerCostModel::train(&train).unwrap();

    // Policy: nothing predicted over 30 minutes runs during the day, and
    // unfamiliar queries need a human look first.
    let policy = AdmissionPolicy {
        max_elapsed_seconds: 30.0 * 60.0,
        confidence_distance_threshold: 1.5,
        kill_timeout_factor: 3.0,
        ..AdmissionPolicy::default()
    };

    // The tenant gateway: interactive users get 4x the weight and a
    // deeper queue slice than the reporting batch, whose quota caps how
    // much of the queue it can occupy at once.
    let key = ModelKey::new(config.name.clone(), FeatureKind::QueryPlan);
    let registry = Arc::new(ModelRegistry::new());
    registry.install(key.clone(), model, fallback);
    let service = PredictionService::start(
        Arc::clone(&registry),
        ServeOptions {
            workers: 2,
            max_batch: 4,
            queue_capacity: 64,
            policy,
            tenants: vec![
                TenantSpec::new(INTERACTIVE, "interactive")
                    .weight(4)
                    .quota(8),
                TenantSpec::new(BATCH, "batch").weight(1).quota(4),
            ],
            ..ServeOptions::default()
        },
    );

    // A fresh burst of queries: half from interactive users, half from
    // the nightly batch, submitted as fast as the client can go.
    let burst = collect_tpcds(24, 901, &config, 4);
    let mut pending = Vec::new();
    let mut shed: Vec<(usize, TenantId, String)> = Vec::new();
    for (i, r) in burst.records.iter().enumerate() {
        let tenant = if i % 2 == 0 { INTERACTIVE } else { BATCH };
        let mut request = PredictRequest {
            key: key.clone(),
            tenant,
            spec: r.spec.clone(),
            plan: r.optimized.plan.clone(),
            deadline: Duration::from_secs(10),
        };
        // The gateway sheds instantly instead of blocking; a well-behaved
        // client backs off and retries, so over-quota is flow control,
        // not data loss.
        loop {
            match service.submit_async(request) {
                Ok(p) => {
                    pending.push((i, tenant, p));
                    break;
                }
                Err(QppError::TenantQuotaExceeded { tenant: id, quota }) => {
                    shed.push((i, tenant, format!("tenant {id} over quota {quota}")));
                    std::thread::sleep(Duration::from_millis(5));
                    request = PredictRequest {
                        key: key.clone(),
                        tenant,
                        spec: r.spec.clone(),
                        plan: r.optimized.plan.clone(),
                        deadline: Duration::from_secs(10),
                    };
                }
                Err(e) => panic!("gateway refused: {e}"),
            }
        }
    }
    for (i, tenant, reason) in &shed {
        println!(
            "query {i:>2}: SHED    {} ({reason}, retried after backoff)",
            if *tenant == INTERACTIVE {
                "interactive"
            } else {
                "batch"
            },
        );
    }

    // Collect the answers; the service applied the admission policy on
    // the worker, so each response already carries the verdict.
    let mut admitted = Vec::new();
    for (i, tenant, p) in pending {
        let resp = p.wait().expect("generous deadline");
        let label = if tenant == INTERACTIVE {
            "interactive"
        } else {
            "batch"
        };
        let actual = burst.records[i].metrics.elapsed_seconds;
        match &resp.decision {
            AdmissionDecision::Admit {
                kill_timeout_seconds,
            } => {
                println!(
                    "query {i:>2}: ADMIT   {label:<11} predicted {:>8.1}s (kill after {:>8.1}s, actual {:>8.1}s)",
                    resp.prediction.metrics.elapsed_seconds, kill_timeout_seconds, actual
                );
                admitted.push((i, resp.prediction.clone()));
            }
            AdmissionDecision::Reject { reason } => {
                println!("query {i:>2}: REJECT  {label:<11} {reason} (actual {actual:.1}s)");
            }
            AdmissionDecision::ReviewRequired {
                confidence_distance,
            } => {
                println!(
                    "query {i:>2}: REVIEW  {label:<11} unfamiliar query (neighbor distance {confidence_distance:.2}, actual {actual:.1}s)"
                );
            }
        }
    }

    // Schedule the admitted queries shortest-predicted-first.
    let admitted_preds: Vec<_> = admitted.iter().map(|(_, p)| p.clone()).collect();
    let order = schedule_shortest_first(&admitted_preds);
    println!("\nSJF execution order (by predicted runtime):");
    for pos in &order {
        let (batch_idx, _) = admitted[*pos];
        println!(
            "  query {batch_idx:>2}: predicted {:>8.1}s",
            admitted_preds[*pos].metrics.elapsed_seconds
        );
    }
    println!(
        "\npredicted batch makespan: {:.1}s (actual of admitted: {:.1}s)",
        predicted_serial_makespan(&admitted_preds),
        admitted
            .iter()
            .map(|(i, _)| burst.records[*i].metrics.elapsed_seconds)
            .sum::<f64>()
    );

    println!("\ngateway ledger:\n{}", service.stats());
}
