//! Workload management on top of predictions (paper §I): admission
//! control, kill timeouts, and shortest-job-first scheduling so
//! feathers never queue behind bowling balls.
//!
//! ```text
//! cargo run --release --example workload_management
//! ```

use qpp::core::pipeline::collect_tpcds;
use qpp::core::workload_mgmt::{
    decide, predicted_serial_makespan, schedule_shortest_first, AdmissionDecision, AdmissionPolicy,
};
use qpp::core::{KccaPredictor, PredictorOptions};
use qpp::engine::SystemConfig;

fn main() {
    let config = SystemConfig::neoview_4();
    println!("calibrating predictor …");
    let train = collect_tpcds(1500, 7, &config, 4);
    let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();

    // A fresh batch of queries submitted by users.
    let batch = collect_tpcds(24, 901, &config, 4);
    let predictions = model.predict_dataset(&batch).unwrap();

    // Policy: nothing predicted over 30 minutes runs during the day, and
    // unfamiliar queries need a human look first.
    let policy = AdmissionPolicy {
        max_elapsed_seconds: 30.0 * 60.0,
        confidence_distance_threshold: 1.5,
        kill_timeout_factor: 3.0,
        ..AdmissionPolicy::default()
    };

    let mut admitted = Vec::new();
    for (i, p) in predictions.iter().enumerate() {
        let verdict = decide(&policy, p);
        let actual = batch.records[i].metrics.elapsed_seconds;
        match &verdict {
            AdmissionDecision::Admit {
                kill_timeout_seconds,
            } => {
                println!(
                    "query {i:>2}: ADMIT   predicted {:>8.1}s (kill after {:>8.1}s, actual {:>8.1}s)",
                    p.metrics.elapsed_seconds, kill_timeout_seconds, actual
                );
                admitted.push(i);
            }
            AdmissionDecision::Reject { reason } => {
                println!("query {i:>2}: REJECT  {reason} (actual {actual:.1}s)");
            }
            AdmissionDecision::ReviewRequired {
                confidence_distance,
            } => {
                println!(
                    "query {i:>2}: REVIEW  unfamiliar query (neighbor distance {confidence_distance:.2}, actual {actual:.1}s)"
                );
            }
        }
    }

    // Schedule the admitted queries shortest-predicted-first.
    let admitted_preds: Vec<_> = admitted.iter().map(|&i| predictions[i].clone()).collect();
    let order = schedule_shortest_first(&admitted_preds);
    println!("\nSJF execution order (by predicted runtime):");
    for pos in &order {
        let batch_idx = admitted[*pos];
        println!(
            "  query {batch_idx:>2}: predicted {:>8.1}s",
            admitted_preds[*pos].metrics.elapsed_seconds
        );
    }
    println!(
        "\npredicted batch makespan: {:.1}s (actual of admitted: {:.1}s)",
        predicted_serial_makespan(&admitted_preds),
        admitted
            .iter()
            .map(|&i| batch.records[i].metrics.elapsed_seconds)
            .sum::<f64>()
    );
}
